// Package buffer implements the per-node LRU buffer pool. Index roots and
// hot interior pages stay resident, so repeated index traversals pay CPU but
// not I/O — the behaviour the paper's query cost structure assumes.
//
// The pool deduplicates concurrent misses on the same page: the first
// requester performs the disk read while later requesters wait on its
// completion, as a real buffer manager's I/O latch would arrange.
package buffer

import (
	"container/list"
	"fmt"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Pool is one node's buffer pool.
type Pool struct {
	eng      *sim.Engine
	name     string
	capacity int // pages; 0 disables caching entirely (every read hits disk)
	disk     *hw.Disk

	lru      *list.List            // front = most recent; values are page numbers
	resident map[int]*list.Element // physical page -> LRU element
	inflight map[int]*pendingRead  // physical page -> pending read completion

	hits, misses, evictions int64

	// Registry handles (nil-safe when metrics are disabled).
	hitsC, missesC, evictionsC *obs.Counter
}

// NewPool creates a pool of the given capacity over the node's disk.
// capacity == 0 turns the pool into a pass-through (ablation runs);
// a negative capacity is an error.
func NewPool(e *sim.Engine, name string, capacity int, disk *hw.Disk) *Pool {
	if capacity < 0 {
		panic(fmt.Sprintf("buffer: negative capacity %d", capacity))
	}
	b := &Pool{
		eng:      e,
		name:     name,
		capacity: capacity,
		disk:     disk,
		lru:      list.New(),
		resident: make(map[int]*list.Element),
		inflight: make(map[int]*pendingRead),
	}
	if reg := e.Metrics(); reg != nil {
		b.hitsC = reg.Counter(name + ".hits")
		b.missesC = reg.Counter(name + ".misses")
		b.evictionsC = reg.Counter(name + ".evictions")
	}
	return b
}

// pendingRead tracks one in-flight disk read: piggybackers wait on tr, and
// err carries the reader's outcome to them (set before tr fires).
type pendingRead struct {
	tr  *sim.Trigger
	err error
}

// Read ensures physPage is in memory, blocking the caller for the disk read
// on a miss. Hits cost no simulated time (the lookup is folded into the
// caller's per-page CPU charge). An error means the page did not reach
// memory — the disk failed or the read hit an injected I/O error — and is
// delivered to piggybacked waiters too; the page is not marked resident.
func (b *Pool) Read(p *sim.Proc, physPage int) error {
	return b.ReadHeat(p, physPage, nil)
}

// ReadHeat is Read with per-fragment heat attribution: hits (including
// piggybacked waits, which issue no disk request of their own) and misses
// are counted on h, and a miss forwards h to the disk so the physical
// read's queue wait lands on the fragment too. A nil h is exactly Read,
// so per-fragment misses sum to the disk's read totals when every caller
// attributes.
func (b *Pool) ReadHeat(p *sim.Proc, physPage int, h *obs.FragHeat) error {
	if b.capacity == 0 {
		b.misses++
		b.missesC.Inc()
		h.BufferMiss()
		return b.disk.ReadHeat(p, physPage, h)
	}
	if el, ok := b.resident[physPage]; ok {
		b.hits++
		b.hitsC.Inc()
		h.BufferHit()
		b.lru.MoveToFront(el)
		return nil
	}
	if pr, ok := b.inflight[physPage]; ok {
		// Another process is already reading this page; piggyback on it and
		// share its outcome.
		b.hits++
		b.hitsC.Inc()
		h.BufferHit()
		pr.tr.Wait(p)
		return pr.err
	}
	b.misses++
	b.missesC.Inc()
	h.BufferMiss()
	pr := &pendingRead{tr: sim.NewTrigger(b.eng)}
	b.inflight[physPage] = pr
	pr.err = b.disk.ReadHeat(p, physPage, h)
	delete(b.inflight, physPage)
	if pr.err == nil {
		b.insert(physPage)
	}
	pr.tr.Fire()
	return pr.err
}

// insert adds the page as most-recently-used, evicting LRU pages over
// capacity. (All pages are clean in this read-only workload, so eviction is
// free.)
func (b *Pool) insert(physPage int) {
	if el, ok := b.resident[physPage]; ok {
		b.lru.MoveToFront(el)
		return
	}
	b.resident[physPage] = b.lru.PushFront(physPage)
	for b.lru.Len() > b.capacity {
		oldest := b.lru.Back()
		b.lru.Remove(oldest)
		delete(b.resident, oldest.Value.(int))
		b.evictions++
		b.evictionsC.Inc()
	}
}

// Warm marks a page resident without simulating I/O; used to pre-load
// catalog-like pages before a measurement run when configured to do so.
func (b *Pool) Warm(physPage int) {
	if b.capacity == 0 {
		return
	}
	b.insert(physPage)
}

// Contains reports whether the page is currently resident.
func (b *Pool) Contains(physPage int) bool {
	_, ok := b.resident[physPage]
	return ok
}

// Len reports the number of resident pages.
func (b *Pool) Len() int { return b.lru.Len() }

// Hits reports buffer hits (including piggybacked in-flight reads).
func (b *Pool) Hits() int64 { return b.hits }

// Misses reports buffer misses (actual disk reads issued).
func (b *Pool) Misses() int64 { return b.misses }

// Evictions reports pages evicted to stay within capacity.
func (b *Pool) Evictions() int64 { return b.evictions }

// HitRate reports hits / (hits + misses), or 0 before any access.
func (b *Pool) HitRate() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

// ResetStats clears hit/miss/eviction counters (post warm-up) without
// evicting pages.
func (b *Pool) ResetStats() {
	b.hits, b.misses, b.evictions = 0, 0, 0
	b.hitsC.Reset()
	b.missesC.Reset()
	b.evictionsC.Reset()
}
