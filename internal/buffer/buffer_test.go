package buffer

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
)

func rig(t *testing.T, capacity int) (*sim.Engine, *hw.Disk, *Pool) {
	t.Helper()
	e := sim.New()
	p := hw.DefaultParams()
	cpu := hw.NewCPU(e, "cpu", p)
	disk := hw.NewDisk(e, "disk", p, cpu, rng.NewFactory(3).Stream("lat"))
	return e, disk, NewPool(e, "buf", capacity, disk)
}

func run(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("test", fn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMissThenHit(t *testing.T) {
	e, disk, pool := rig(t, 8)
	run(t, e, func(p *sim.Proc) {
		pool.Read(p, 100)
		first := p.Now()
		pool.Read(p, 100) // hit: free
		if p.Now() != first {
			t.Error("hit consumed simulated time")
		}
	})
	if pool.Hits() != 1 || pool.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", pool.Hits(), pool.Misses())
	}
	if disk.Reads() != 1 {
		t.Fatalf("disk reads = %d", disk.Reads())
	}
	if pool.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g", pool.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	e, _, pool := rig(t, 2)
	run(t, e, func(p *sim.Proc) {
		pool.Read(p, 1)
		pool.Read(p, 2)
		pool.Read(p, 3) // evicts 1
		if pool.Contains(1) {
			t.Error("page 1 should be evicted")
		}
		if !pool.Contains(2) || !pool.Contains(3) {
			t.Error("pages 2,3 should be resident")
		}
		if pool.Len() != 2 {
			t.Errorf("len = %d", pool.Len())
		}
	})
}

func TestLRUTouchRefreshes(t *testing.T) {
	e, _, pool := rig(t, 2)
	run(t, e, func(p *sim.Proc) {
		pool.Read(p, 1)
		pool.Read(p, 2)
		pool.Read(p, 1) // touch 1; now 2 is LRU
		pool.Read(p, 3) // evicts 2
		if !pool.Contains(1) || pool.Contains(2) {
			t.Error("LRU order not refreshed by hit")
		}
	})
}

func TestZeroCapacityAlwaysReads(t *testing.T) {
	e, disk, pool := rig(t, 0)
	run(t, e, func(p *sim.Proc) {
		pool.Read(p, 5)
		pool.Read(p, 5)
	})
	if disk.Reads() != 2 {
		t.Fatalf("disk reads = %d, want 2 with caching disabled", disk.Reads())
	}
	if pool.Hits() != 0 {
		t.Fatalf("hits = %d", pool.Hits())
	}
}

func TestConcurrentMissesCoalesce(t *testing.T) {
	e, disk, pool := rig(t, 8)
	done := 0
	for i := 0; i < 4; i++ {
		e.Spawn("reader", func(p *sim.Proc) {
			pool.Read(p, 42)
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if disk.Reads() != 1 {
		t.Fatalf("disk reads = %d, want 1 (coalesced)", disk.Reads())
	}
	if pool.Misses() != 1 || pool.Hits() != 3 {
		t.Fatalf("misses=%d hits=%d", pool.Misses(), pool.Hits())
	}
}

func TestWarm(t *testing.T) {
	e, disk, pool := rig(t, 8)
	pool.Warm(7)
	run(t, e, func(p *sim.Proc) {
		pool.Read(p, 7)
	})
	if disk.Reads() != 0 {
		t.Fatalf("warm page caused %d disk reads", disk.Reads())
	}
	if pool.Hits() != 1 {
		t.Fatalf("hits = %d", pool.Hits())
	}
}

func TestWarmZeroCapacityNoop(t *testing.T) {
	_, _, pool := rig(t, 0)
	pool.Warm(7)
	if pool.Contains(7) {
		t.Fatal("zero-capacity pool should not retain warmed pages")
	}
}

func TestResetStats(t *testing.T) {
	e, _, pool := rig(t, 8)
	run(t, e, func(p *sim.Proc) {
		pool.Read(p, 1)
		pool.Read(p, 1)
	})
	pool.ResetStats()
	if pool.Hits() != 0 || pool.Misses() != 0 {
		t.Fatal("stats not reset")
	}
	if !pool.Contains(1) {
		t.Fatal("ResetStats must not evict pages")
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative capacity did not panic")
		}
	}()
	e := sim.New()
	p := hw.DefaultParams()
	cpu := hw.NewCPU(e, "cpu", p)
	disk := hw.NewDisk(e, "disk", p, cpu, rng.NewFactory(3).Stream("lat"))
	NewPool(e, "buf", -1, disk)
}
