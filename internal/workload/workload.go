// Package workload defines the paper's Section 6 workload: the two query
// types QA (attribute A = unique1, non-clustered index) and QB (attribute
// B = unique2, clustered index) in their "low" and "moderate" resource
// flavours, the four 50/50 mixes the evaluation runs, predicate sampling,
// and the analytic resource estimates the MAGIC planner consumes.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/storage"
)

// Class is one query class of a mix.
type Class struct {
	Name      string
	Attr      int
	Access    exec.AccessKind
	Tuples    int // result cardinality (predicate width on the unique attrs)
	Frequency float64
}

// Mix is a workload: classes with relative frequencies, plus an optional
// access-skew model. With HotProbability > 0, that fraction of queries
// lands in the first HotFraction of the value domain (an 80/20-style
// hot-spot pattern) — the bottleneck concern Section 6 cites from [GD90].
// Zero values give the paper's uniform access.
type Mix struct {
	Name    string
	Classes []Class

	HotProbability float64 // fraction of queries aimed at the hot range
	HotFraction    float64 // fraction of the domain that is hot
}

// WithHotSpot returns a copy of the mix in which hotProb of the queries
// target the first hotFrac of the attribute domain.
func (m Mix) WithHotSpot(hotProb, hotFrac float64) Mix {
	if hotProb < 0 || hotProb > 1 || hotFrac <= 0 || hotFrac > 1 {
		panic(fmt.Sprintf("workload: bad hot-spot spec (%g, %g)", hotProb, hotFrac))
	}
	m.HotProbability = hotProb
	m.HotFraction = hotFrac
	m.Name = fmt.Sprintf("%s+hot%.0f/%.0f", m.Name, hotProb*100, hotFrac*100)
	return m
}

// Paper Section 6 result cardinalities: low-A is a single-tuple
// non-clustered retrieval; low-B a 10-tuple clustered range (0.01% of the
// 100,000-tuple relation); moderate-A a 30-tuple non-clustered range
// (0.03%); moderate-B a 300-tuple clustered range (0.3%). The absolute
// tuple counts — not the percentages — drive the comparative dynamics
// (operator fan-out, BERD's per-tuple fetches), so scaled-down relations
// keep the counts, clamped to the relation size.
func classQA(low bool, card int) Class {
	if low {
		return Class{Name: "QA-low", Attr: storage.Unique1,
			Access: exec.AccessNonClustered, Tuples: 1, Frequency: 0.5}
	}
	return Class{Name: "QA-moderate", Attr: storage.Unique1,
		Access: exec.AccessNonClustered, Tuples: minInt(30, card), Frequency: 0.5}
}

func classQB(low bool, card int) Class {
	if low {
		return Class{Name: "QB-low", Attr: storage.Unique2,
			Access: exec.AccessClustered, Tuples: minInt(10, card), Frequency: 0.5}
	}
	return Class{Name: "QB-moderate", Attr: storage.Unique2,
		Access: exec.AccessClustered, Tuples: minInt(300, card), Frequency: 0.5}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LowLow is the Section 7.1 mix.
func LowLow(card int) Mix {
	return Mix{Name: "low-low", Classes: []Class{classQA(true, card), classQB(true, card)}}
}

// LowLowWider is the Figure 9 variant: QB's selectivity doubled (20 tuples
// at 100k).
func LowLowWider(card int) Mix {
	qb := classQB(true, card)
	qb.Tuples *= 2
	qb.Name = "QB-low-wider"
	return Mix{Name: "low-low-wider", Classes: []Class{classQA(true, card), qb}}
}

// LowModerate is the Section 7.2 mix.
func LowModerate(card int) Mix {
	return Mix{Name: "low-moderate", Classes: []Class{classQA(true, card), classQB(false, card)}}
}

// ModerateLow is the Section 7.3 mix.
func ModerateLow(card int) Mix {
	return Mix{Name: "moderate-low", Classes: []Class{classQA(false, card), classQB(true, card)}}
}

// ModerateModerate is the Section 7.4 mix.
func ModerateModerate(card int) Mix {
	return Mix{Name: "moderate-moderate", Classes: []Class{classQA(false, card), classQB(false, card)}}
}

// AccessChooser returns the access-method chooser for this mix (non-
// clustered on A, clustered on B, per Section 6).
func (m Mix) AccessChooser() exec.AccessChooser {
	byAttr := make(map[int]exec.AccessKind, len(m.Classes))
	for _, c := range m.Classes {
		byAttr[c.Attr] = c.Access
	}
	return func(pred core.Predicate) exec.AccessKind {
		if k, ok := byAttr[pred.Attr]; ok {
			return k
		}
		if pred.Attr == storage.Unique2 {
			return exec.AccessClustered
		}
		if pred.Attr == storage.Unique1 {
			return exec.AccessNonClustered
		}
		// No index covers the attribute: full sequential scan.
		return exec.AccessSeqScan
	}
}

// Sample draws one query: a class (by frequency) and a predicate whose
// value range covers exactly Tuples tuples of the unique attribute domain
// [0, card).
func (m Mix) Sample(src *rng.Source, card int) (core.Predicate, Class) {
	if len(m.Classes) == 0 {
		panic("workload: empty mix")
	}
	var total float64
	for _, c := range m.Classes {
		total += c.Frequency
	}
	r := src.Float64() * total
	cls := m.Classes[len(m.Classes)-1]
	for _, c := range m.Classes {
		if r < c.Frequency {
			cls = c
			break
		}
		r -= c.Frequency
	}
	if cls.Tuples > card {
		panic(fmt.Sprintf("workload: class %s wants %d tuples of %d", cls.Name, cls.Tuples, card))
	}
	span := card - cls.Tuples + 1
	if m.HotProbability > 0 && src.Bool(m.HotProbability) {
		if hot := int(float64(span) * m.HotFraction); hot >= 1 {
			span = hot
		}
	}
	lo := int64(src.Intn(span))
	return core.Predicate{Attr: cls.Attr, Lo: lo, Hi: lo + int64(cls.Tuples) - 1}, cls
}

// EstimateSpecs derives the planner's per-class resource requirements
// (CPUi, Diski, Neti of Section 3.2) from the hardware parameters and the
// access paths, as a database administrator would when configuring MAGIC:
//
//   - non-clustered access: one random disk read per qualifying tuple (index
//     interior pages are buffer-resident in steady state);
//   - clustered access: one random positioning read, then sequential reads;
//   - CPU: per-page processing (Table 2) plus FIFO transfers;
//   - network: the result packets plus start/reply control messages.
func EstimateSpecs(m Mix, card int, hwp hw.Params, costs exec.Costs) []core.QuerySpec {
	specs := make([]core.QuerySpec, 0, len(m.Classes))
	randomMS := hwp.AvgSettleMS + hwp.MaxLatencyMS/2 + hwp.PageTransferTime().Milliseconds()
	seqMS := hwp.PageTransferTime().Milliseconds()
	for _, c := range m.Classes {
		var diskMS, cpuMS float64
		pages := hwp.PagesForTuples(c.Tuples)
		switch c.Access {
		case exec.AccessNonClustered:
			diskMS = float64(c.Tuples) * randomMS
			cpuMS = float64(c.Tuples) * (hwp.InstrTime(hwp.ReadPageInstr) + hwp.InstrTime(hwp.XferPageInstr)).Milliseconds()
		default: // clustered
			diskMS = randomMS + float64(pages-1)*seqMS
			cpuMS = float64(pages) * (hwp.InstrTime(hwp.ReadPageInstr) + hwp.InstrTime(hwp.XferPageInstr)).Milliseconds()
		}
		// Index search CPU (interior + leaf pages, buffer resident).
		cpuMS += 2 * hwp.InstrTime(costs.IndexPageInstr).Milliseconds()
		// Network: start message + result packets (the last doubles as the
		// completion signal).
		netMS := hwp.MsgCost(100).Milliseconds()
		packets := hwp.PacketsForTuples(c.Tuples)
		if packets == 0 {
			packets = 1
		}
		bytesLeft := hwp.TupleBytes(c.Tuples) + 100
		for i := 0; i < packets; i++ {
			b := bytesLeft
			if b > hwp.MaxPacket {
				b = hwp.MaxPacket
			}
			bytesLeft -= b
			netMS += hwp.MsgCost(b).Milliseconds()
		}
		specs = append(specs, core.QuerySpec{
			Name:           c.Name,
			Attr:           c.Attr,
			TuplesPerQuery: float64(c.Tuples),
			Frequency:      c.Frequency,
			CPUms:          cpuMS,
			DiskMS:         diskMS,
			NetMS:          netMS,
		})
	}
	return specs
}

// PlanParamsFor bundles the planning constants for a machine size and
// relation, using the DESIGN.md-calibrated CP and CS defaults.
func PlanParamsFor(card, processors int, costs exec.Costs) core.PlanParams {
	return core.PlanParams{
		CPms:        1.7,
		CSms:        costs.CSms,
		Processors:  processors,
		Cardinality: card,
	}
}
