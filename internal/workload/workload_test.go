package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/storage"
)

func TestMixDefinitionsMatchSection6(t *testing.T) {
	const card = 100000
	cases := []struct {
		mix      Mix
		qaTuples int
		qbTuples int
	}{
		{LowLow(card), 1, 10},
		{LowLowWider(card), 1, 20},
		{LowModerate(card), 1, 300},
		{ModerateLow(card), 30, 10},
		{ModerateModerate(card), 30, 300},
	}
	for _, c := range cases {
		if len(c.mix.Classes) != 2 {
			t.Fatalf("%s: %d classes", c.mix.Name, len(c.mix.Classes))
		}
		qa, qb := c.mix.Classes[0], c.mix.Classes[1]
		if qa.Attr != storage.Unique1 || qa.Access != exec.AccessNonClustered {
			t.Fatalf("%s: QA misconfigured: %+v", c.mix.Name, qa)
		}
		if qb.Attr != storage.Unique2 || qb.Access != exec.AccessClustered {
			t.Fatalf("%s: QB misconfigured: %+v", c.mix.Name, qb)
		}
		if qa.Tuples != c.qaTuples || qb.Tuples != c.qbTuples {
			t.Fatalf("%s: tuples = %d/%d, want %d/%d",
				c.mix.Name, qa.Tuples, qb.Tuples, c.qaTuples, c.qbTuples)
		}
		if qa.Frequency != 0.5 || qb.Frequency != 0.5 {
			t.Fatalf("%s: frequencies must be 50/50", c.mix.Name)
		}
	}
}

func TestMixCountsFixedAcrossCardinality(t *testing.T) {
	// The paper's absolute result cardinalities hold at any relation size
	// (they drive fan-out and BERD's per-tuple fetches), clamped for tiny
	// relations.
	m := ModerateModerate(10000)
	if m.Classes[0].Tuples != 30 || m.Classes[1].Tuples != 300 {
		t.Fatalf("tuples = %d/%d", m.Classes[0].Tuples, m.Classes[1].Tuples)
	}
	tiny := ModerateModerate(100)
	if tiny.Classes[1].Tuples != 100 {
		t.Fatalf("clamped tuples = %d", tiny.Classes[1].Tuples)
	}
	for _, c := range LowLow(100).Classes {
		if c.Tuples < 1 {
			t.Fatalf("class %s has %d tuples", c.Name, c.Tuples)
		}
	}
}

func TestSamplePredicateWidth(t *testing.T) {
	const card = 10000
	m := LowModerate(card)
	src := rng.NewSource("t", 3)
	sawQA, sawQB := false, false
	for i := 0; i < 500; i++ {
		pred, cls := m.Sample(src, card)
		want := int64(cls.Tuples)
		if pred.Hi-pred.Lo+1 != want {
			t.Fatalf("class %s: predicate width %d, want %d", cls.Name, pred.Hi-pred.Lo+1, want)
		}
		if pred.Lo < 0 || pred.Hi >= card {
			t.Fatalf("predicate [%d,%d] outside domain", pred.Lo, pred.Hi)
		}
		switch cls.Attr {
		case storage.Unique1:
			sawQA = true
		case storage.Unique2:
			sawQB = true
		}
	}
	if !sawQA || !sawQB {
		t.Fatal("sampling never produced one of the classes")
	}
}

func TestSampleFrequencies(t *testing.T) {
	const card = 10000
	m := LowLow(card)
	src := rng.NewSource("t", 7)
	qa := 0
	const n = 20000
	for i := 0; i < n; i++ {
		_, cls := m.Sample(src, card)
		if cls.Attr == storage.Unique1 {
			qa++
		}
	}
	frac := float64(qa) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("QA fraction = %g, want ~0.5", frac)
	}
}

func TestAccessChooser(t *testing.T) {
	m := LowLow(1000)
	choose := m.AccessChooser()
	if choose(core.Predicate{Attr: storage.Unique1}) != exec.AccessNonClustered {
		t.Fatal("A should use the non-clustered index")
	}
	if choose(core.Predicate{Attr: storage.Unique2}) != exec.AccessClustered {
		t.Fatal("B should use the clustered index")
	}
	if choose(core.Predicate{Attr: storage.Ten}) != exec.AccessSeqScan {
		t.Fatal("non-indexed attributes must fall back to a sequential scan")
	}
}

func TestEstimateSpecs(t *testing.T) {
	const card = 100000
	hwp := hw.DefaultParams()
	costs := exec.DefaultCosts()
	specs := EstimateSpecs(LowModerate(card), card, hwp, costs)
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	qa, qb := specs[0], specs[1]
	if qa.TuplesPerQuery != 1 || qb.TuplesPerQuery != 300 {
		t.Fatalf("tuples = %g/%g", qa.TuplesPerQuery, qb.TuplesPerQuery)
	}
	// A single-tuple non-clustered query: one random I/O ~ 2+8.34+4.34 ms.
	if qa.DiskMS < 10 || qa.DiskMS > 20 {
		t.Fatalf("QA-low disk estimate = %gms", qa.DiskMS)
	}
	// The moderate clustered query must be far more expensive overall.
	if qb.DiskMS+qb.CPUms+qb.NetMS < 3*(qa.DiskMS+qa.CPUms+qa.NetMS) {
		t.Fatal("moderate query should dominate the low query")
	}
	// All components positive.
	for _, s := range specs {
		if s.CPUms <= 0 || s.DiskMS <= 0 || s.NetMS <= 0 {
			t.Fatalf("spec %s has non-positive resources: %+v", s.Name, s)
		}
	}
}

// The planner fed with estimated specs should put Mi for a moderate query
// well above Mi for a low query — the property the paper's grid shapes
// depend on.
func TestEstimatedMiOrdering(t *testing.T) {
	const card = 100000
	hwp := hw.DefaultParams()
	costs := exec.DefaultCosts()
	pp := PlanParamsFor(card, 32, costs)
	plan, err := core.ComputePlan(EstimateSpecs(LowModerate(card), card, hwp, costs), pp)
	if err != nil {
		t.Fatal(err)
	}
	miA := plan.Mi[storage.Unique1]
	miB := plan.Mi[storage.Unique2]
	if miB < 2*miA {
		t.Fatalf("Mi(B-moderate)=%g should dwarf Mi(A-low)=%g", miB, miA)
	}
	if miA < 1 || miB > 32 {
		t.Fatalf("Mi out of range: %g, %g", miA, miB)
	}
}

func TestSampleValidation(t *testing.T) {
	src := rng.NewSource("t", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized class did not panic")
		}
	}()
	m := Mix{Name: "bad", Classes: []Class{{Name: "x", Tuples: 100, Frequency: 1}}}
	m.Sample(src, 10)
}

func TestHotSpotSampling(t *testing.T) {
	const card = 10000
	m := LowLow(card).WithHotSpot(0.8, 0.1)
	src := rng.NewSource("t", 5)
	inHot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		pred, _ := m.Sample(src, card)
		if pred.Lo < card/10 {
			inHot++
		}
	}
	frac := float64(inHot) / n
	// 80% targeted + ~10% of the uniform remainder ~= 82%.
	if frac < 0.75 || frac > 0.9 {
		t.Fatalf("hot-range fraction = %g, want ~0.82", frac)
	}
	if m.Name != "low-low+hot80/10" {
		t.Fatalf("name = %q", m.Name)
	}
}

func TestHotSpotValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad hot-spot spec accepted")
		}
	}()
	LowLow(100).WithHotSpot(1.5, 0.1)
}

func TestUniformMixUnaffectedByHotFields(t *testing.T) {
	const card = 10000
	m := LowLow(card)
	src := rng.NewSource("t", 6)
	low := 0
	for i := 0; i < 10000; i++ {
		pred, _ := m.Sample(src, card)
		if pred.Lo < card/10 {
			low++
		}
	}
	if frac := float64(low) / 10000; frac < 0.07 || frac > 0.13 {
		t.Fatalf("uniform sampling skewed: %g in first decile", frac)
	}
}
