package main

import (
	"testing"

	"repro/internal/serve"
)

func TestBuildOptions(t *testing.T) {
	opts, err := buildOptions("quick", 0, 0, "", 0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Cardinality != 20000 {
		t.Fatalf("quick cardinality = %d", opts.Cardinality)
	}
	if opts.Seed != 1 || opts.SeedSet {
		t.Fatalf("default seed = %d (set=%v), want 1 (unset)", opts.Seed, opts.SeedSet)
	}
	opts, err = buildOptions("paper", 5000, 16, "1,4,8", 100, 10, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Cardinality != 5000 || opts.Processors != 16 ||
		opts.MeasureQueries != 100 || opts.WarmupQueries != 10 || opts.Seed != 9 {
		t.Fatalf("overrides not applied: %+v", opts)
	}
	if len(opts.MPLs) != 3 || opts.MPLs[2] != 8 {
		t.Fatalf("MPLs = %v", opts.MPLs)
	}
}

// An explicit -seed 0 must survive as seed 0 instead of silently falling
// back to the scale default.
func TestBuildOptionsExplicitSeedZero(t *testing.T) {
	opts, err := buildOptions("quick", 0, 0, "", 0, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Seed != 0 || !opts.SeedSet {
		t.Fatalf("explicit seed 0 became %d (set=%v)", opts.Seed, opts.SeedSet)
	}
}

func TestBuildOptionsErrors(t *testing.T) {
	if _, err := buildOptions("warp", 0, 0, "", 0, 0, 0, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if _, err := buildOptions("quick", 0, 0, "1,zero", 0, 0, 0, false); err == nil {
		t.Error("bad MPL accepted")
	}
	if _, err := buildOptions("quick", 0, 0, "0", 0, 0, 0, false); err == nil {
		t.Error("non-positive MPL accepted")
	}
}

func TestSelectFigures(t *testing.T) {
	all, err := selectFigures("")
	if err != nil || len(all) != 9 {
		t.Fatalf("all figures: %d, %v", len(all), err)
	}
	some, err := selectFigures("8a, 12b")
	if err != nil || len(some) != 2 || some[1].ID != "12b" {
		t.Fatalf("subset: %v, %v", some, err)
	}
	if _, err := selectFigures("99x"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestSelectFiguresNone(t *testing.T) {
	figs, err := selectFigures("none")
	if err != nil || len(figs) != 0 {
		t.Fatalf("none: %v, %v", figs, err)
	}
}

func TestWorkersFor(t *testing.T) {
	if got := workersFor(8); got != 8 {
		t.Fatalf("workersFor(8) = %d", got)
	}
	if got := workersFor(0); got < 1 {
		t.Fatalf("workersFor(0) = %d", got)
	}
}

func TestBuildOpenOptions(t *testing.T) {
	oopts, err := buildOpenOptions("poisson", "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oopts.Arrival != serve.Poisson || oopts.Lambdas != nil {
		t.Fatalf("defaults not preserved: %+v", oopts)
	}
	oopts, err = buildOpenOptions("bursty", "100, 250.5,800", 3, 500, 32)
	if err != nil {
		t.Fatal(err)
	}
	if oopts.Arrival != serve.Bursty || oopts.Tenants != 3 ||
		oopts.SLOms != 500 || oopts.MaxInService != 32 {
		t.Fatalf("overrides not applied: %+v", oopts)
	}
	want := []float64{100, 250.5, 800}
	if len(oopts.Lambdas) != 3 || oopts.Lambdas[0] != want[0] ||
		oopts.Lambdas[1] != want[1] || oopts.Lambdas[2] != want[2] {
		t.Fatalf("lambdas = %v, want %v", oopts.Lambdas, want)
	}
	if _, err := buildOpenOptions("diurnal", "", 0, 0, 0); err != nil {
		t.Fatalf("diurnal rejected: %v", err)
	}
}

func TestBuildOpenOptionsErrors(t *testing.T) {
	cases := []struct {
		name             string
		arrival, lambdas string
		tenants          int
		sloMS            float64
		governor         int
	}{
		{"unknown arrival", "lognormal", "", 0, 0, 0},
		{"bad lambda", "poisson", "100,fast", 0, 0, 0},
		{"zero lambda", "poisson", "0", 0, 0, 0},
		{"negative lambda", "poisson", "-5", 0, 0, 0},
		{"negative tenants", "poisson", "", -1, 0, 0},
		{"negative slo", "poisson", "", 0, -1, 0},
		{"negative governor", "poisson", "", 0, 0, -1},
	}
	for _, c := range cases {
		if _, err := buildOpenOptions(c.arrival, c.lambdas, c.tenants, c.sloMS, c.governor); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}
