// Command declusterbench regenerates the paper's evaluation figures: for
// each figure of Section 7 it sweeps the multiprogramming level over the
// MAGIC, BERD and range declustering strategies on the simulated Gamma
// machine and prints the throughput series (and, with -detail, per-point
// diagnostics).
//
// Usage:
//
//	declusterbench [flags]
//
//	-fig 8a,8b,...   figures to run (default: all; "none" skips figures)
//	-scale paper     "paper" (100k tuples, MPL 1..64) or "quick"
//	-card N          override relation cardinality
//	-procs N         override processor count
//	-mpl 1,8,64      override the MPL sweep
//	-measure N       override queries measured per point
//	-warmup N        override warm-up queries per point
//	-seed N          experiment seed
//	-detail          print per-point diagnostics
//	-csv             emit CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		figList   = flag.String("fig", "", "comma-separated figure ids (default: all)")
		scale     = flag.String("scale", "paper", `"paper" or "quick"`)
		card      = flag.Int("card", 0, "relation cardinality override")
		procs     = flag.Int("procs", 0, "processor count override")
		mplList   = flag.String("mpl", "", "comma-separated MPL sweep override")
		measure   = flag.Int("measure", 0, "measured queries per point override")
		warmup    = flag.Int("warmup", 0, "warm-up queries per point override")
		seed      = flag.Int64("seed", 0, "experiment seed override")
		detail    = flag.Bool("detail", false, "print per-point diagnostics")
		plot      = flag.Bool("plot", false, "draw each figure as an ASCII chart")
		jsonOut   = flag.String("json", "", "write results to a JSON archive")
		compare   = flag.String("compare", "", "compare against a previous JSON archive")
		tolerance = flag.Float64("tolerance", 0.05, "relative drift threshold for -compare")
		csv       = flag.Bool("csv", false, "emit CSV")
		scaleout  = flag.Bool("scaleout", false, "run the machine-size sweep too")
	)
	flag.Parse()

	opts, err := buildOptions(*scale, *card, *procs, *mplList, *measure, *warmup, *seed)
	if err != nil {
		fatal(err)
	}
	figs, err := selectFigures(*figList)
	if err != nil {
		fatal(err)
	}

	archive := experiments.Archive{Label: "declusterbench", Options: opts}
	for _, fig := range figs {
		fmt.Fprintf(os.Stderr, "running figure %s (%s)...\n", fig.ID, fig.Title)
		res, err := experiments.Run(fig, opts)
		if err != nil {
			fatal(err)
		}
		archive.Figures = append(archive.Figures, res.Archive())
		if *csv {
			fmt.Print(res.Table().CSV())
		} else {
			fmt.Println(res.Table().String())
		}
		for _, n := range res.Notes {
			fmt.Printf("  %s\n", n)
		}
		if *plot {
			fmt.Println()
			fmt.Println(res.Chart().String())
		}
		if *detail {
			if *csv {
				fmt.Print(res.DetailTable().CSV())
			} else {
				fmt.Println(res.DetailTable().String())
			}
		}
		fmt.Println()
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteArchive(f, archive); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			fatal(err)
		}
		baseline, err := experiments.ReadArchive(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		diffs := experiments.CompareArchives(baseline, archive, *tolerance)
		if len(diffs) == 0 {
			fmt.Printf("no throughput drifts beyond %.0f%% versus %s\n", *tolerance*100, *compare)
		} else {
			fmt.Printf("throughput drifts beyond %.0f%% versus %s:\n", *tolerance*100, *compare)
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
		}
	}

	if *scaleout {
		fmt.Fprintln(os.Stderr, "running scale-out sweep...")
		res, err := experiments.RunScaleSweep(experiments.DefaultScaleSweep(), opts)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(res.Table().CSV())
		} else {
			fmt.Println(res.Table().String())
		}
	}
}

func buildOptions(scale string, card, procs int, mplList string, measure, warmup int, seed int64) (experiments.Options, error) {
	var opts experiments.Options
	switch scale {
	case "paper":
		opts = experiments.PaperScale()
	case "quick":
		opts = experiments.QuickScale()
	default:
		return opts, fmt.Errorf("unknown -scale %q (want paper or quick)", scale)
	}
	if card > 0 {
		opts.Cardinality = card
	}
	if procs > 0 {
		opts.Processors = procs
	}
	if measure > 0 {
		opts.MeasureQueries = measure
	}
	if warmup > 0 {
		opts.WarmupQueries = warmup
	}
	if seed != 0 {
		opts.Seed = seed
	}
	if mplList != "" {
		var mpls []int
		for _, s := range strings.Split(mplList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				return opts, fmt.Errorf("bad MPL %q", s)
			}
			mpls = append(mpls, v)
		}
		opts.MPLs = mpls
	}
	return opts, nil
}

func selectFigures(list string) ([]experiments.Figure, error) {
	if list == "" {
		return experiments.Figures(), nil
	}
	if list == "none" {
		return nil, nil
	}
	var out []experiments.Figure
	for _, id := range strings.Split(list, ",") {
		fig, err := experiments.FigureByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "declusterbench:", err)
	os.Exit(1)
}
