// Command declusterbench regenerates the paper's evaluation figures: for
// each figure of Section 7 it sweeps the multiprogramming level over the
// MAGIC, BERD and range declustering strategies on the simulated Gamma
// machine and prints the throughput series (and, with -detail, per-point
// diagnostics). The (figure, strategy, MPL) runs execute concurrently on a
// bounded worker pool; results are identical whatever the worker count.
//
// Usage:
//
//	declusterbench [flags]
//
//	-fig 8a,8b,...   figures to run (default: all; "none" skips figures)
//	-scale paper     "paper" (100k tuples, MPL 1..64) or "quick"
//	-card N          override relation cardinality
//	-procs N         override processor count
//	-mpl 1,8,64      override the MPL sweep
//	-measure N       override queries measured per point
//	-warmup N        override warm-up queries per point
//	-seed N          experiment seed (default 1; an explicit -seed 0 is honored)
//	-parallel N      worker pool size (default 0 = GOMAXPROCS; results
//	                 do not depend on N)
//	-timeout D       wall-clock budget per (strategy, MPL) run, e.g. 10m
//	-manifest FILE   write the run manifest (per-job wall times, worker
//	                 count, speedup, failure records) as JSON
//	-detail          print per-point diagnostics
//	-node-stats      print each strategy's per-node utilization table at the
//	                 highest MPL of the sweep (execution-skew breakdown)
//	-csv             emit CSV instead of aligned tables
//	-bench-out FILE  run the simulation-kernel microbenchmark suite and
//	                 write a JSON report (combine with -fig none to run
//	                 benchmarks alone)
//
// Open-system serving mode (ROADMAP item 1; see DESIGN.md §9): instead of
// the closed MPL sweep, admit queries from an open arrival process through
// the admission controller and report sustainable throughput, tail latency
// and shed rate per strategy and offered load, ending with a "serving
// summary" block per figure:
//
//	-open            run the open-system serving campaign (default figure
//	                 scope: 8a when -fig is not given)
//	-arrival K       arrival process: poisson (default), bursty, or diurnal
//	-lambda L        comma-separated offered loads in queries/second
//	                 (default 100,200,400,800)
//	-tenants N       tenant count for weighted round-robin dispatch (default 4)
//	-slo-ms MS       latency SLO for goodput accounting (default 1000)
//	-governor N      MPL governor: concurrent-execution cap (default 64)
//
// Time-resolved telemetry (DESIGN.md §10): windowed time-series sampling on
// every machine the campaign builds, goodput/skew-over-time tables and SLO
// burn lines per figure, CSV export, and a live OpenMetrics endpoint:
//
//	-ts-window D     arm telemetry with sampling window D (e.g. 250ms)
//	-ts-dir DIR      write one CSV time-series file per open-system point
//	                 into DIR (implies -ts-window 250ms when not given)
//	-metrics-addr A  serve OpenMetrics on A at /metrics while running
//	                 (implies telemetry); each point registers under its
//	                 job ID as it completes
//	-metrics-linger D keep the /metrics endpoint up D after the campaign
//	                 (lets scrapers collect the final state; CI uses this)
//
// Fragment heat (DESIGN.md §11): per-fragment access accounting, heatmap
// tables with concentration indices, hot-fragment reports, and
// deterministic CSV export:
//
//	-heatmap         arm fragment heat accounting; print per-strategy
//	                 heatmap tables and a hot-fragments line per figure
//	-heatmap-dir DIR write one canonical-order heat CSV per (figure,
//	                 strategy) into DIR (implies -heatmap)
//	-heat-topk K     hot-fragment report size (default 5; implies -heatmap)
//
// Shared scans (DESIGN.md §12): predicate-grouped batching of concurrent
// selections into shared disk passes, measured off-vs-on per strategy under
// a hot-spot overlay:
//
//	-share           run the shared-scan campaign instead of the figure
//	                 campaign (default figure scope: 11a when -fig is not
//	                 given); prints a per-point off/on table plus greppable
//	                 "sharing figX/strategy mpl=N: ..." summary lines
//	-share-window D  batching window in simulated time (default: the gamma
//	                 default, 5ms)
//
// Sharing rides the legacy scheduler, so -share is mutually exclusive with
// every fault flag and with -open.
//
// Elastic membership (DESIGN.md §13): serve an open arrival process while
// the membership controller joins a standby node and decommissions a member
// mid-run, restaging each strategy's own placement at the new node count
// behind a throttled background copy and a dual-read cutover:
//
//	-elastic         run the elasticity campaign (default figure scope: 8a
//	                 when -fig is not given); prints a per-point table of
//	                 time-to-rebalance, data moved and goodput dip plus one
//	                 greppable "rebalance summary: ..." line per point
//	-join-at D       schedule one standby join at offset D (default 300ms;
//	                 negative disables the join)
//	-leave-at D      schedule the decommission of -leave-node at offset D
//	                 (default 3x -join-at; negative disables it)
//	-leave-node N    the member decommissioned at -leave-at (default 1)
//	-migrate-rate R  throttle the background copier to R pages/second
//	                 (default: the rebalance package default)
//	-sizes 4,8       comma-separated initial cluster sizes (default -procs)
//
// The elasticity campaign reuses -arrival, -tenants, -slo-ms and -governor;
// -lambda's first value is the offered load (default 100). -elastic is
// mutually exclusive with -open, -share and -faults.
//
// Fault injection (all fault flags imply chained replicas and the degraded
// scheduler; see DESIGN.md §8):
//
//	-faults 0,1,2    run the degraded-mode campaign instead of the figure
//	                 campaign: for each selected figure, sweep each strategy
//	                 with k disks fail-stopped for each listed k
//	-mtbf D          arm stochastic transient disk read errors with mean
//	                 time D between faults per disk (e.g. -mtbf 500ms)
//	-kill-disk L     fail-stop disks: comma-separated "n@t[+d]" items, e.g.
//	                 "3@10ms" (node 3's disk dies 10ms in) or "0@5ms+200ms"
//	                 (repaired 200ms later)
//	-kill-node L     crash nodes, same "n@t[+d]" syntax (restart after +d,
//	                 otherwise down for the rest of the run)
//
// Runs with faults armed print a summary line
// "fault outcomes: ok=N retried=N timed_out=N failed=N" that CI greps.
//
// Profiling the simulator itself:
//
//	-cpuprofile FILE  write a pprof CPU profile of the whole run
//	-memprofile FILE  write a pprof heap profile at exit
//	-httppprof ADDR   serve net/http/pprof on ADDR (e.g. localhost:6060)
//	                  for live inspection of long campaigns
//
// Exit status is non-zero when any simulation job fails or when -compare
// finds throughput drifts beyond the tolerance, so both can gate CI.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/gamma"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		figList     = flag.String("fig", "", "comma-separated figure ids (default: all)")
		scale       = flag.String("scale", "paper", `"paper" or "quick"`)
		card        = flag.Int("card", 0, "relation cardinality override")
		procs       = flag.Int("procs", 0, "processor count override")
		mplList     = flag.String("mpl", "", "comma-separated MPL sweep override")
		measure     = flag.Int("measure", 0, "measured queries per point override")
		warmup      = flag.Int("warmup", 0, "warm-up queries per point override")
		seed        = flag.Int64("seed", 0, "experiment seed override (0 is a valid seed when given explicitly)")
		parallel    = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "wall-clock budget per (strategy, MPL) run (0 = none)")
		manifestOut = flag.String("manifest", "", "write the JSON run manifest to this file")
		detail      = flag.Bool("detail", false, "print per-point diagnostics")
		plot        = flag.Bool("plot", false, "draw each figure as an ASCII chart")
		jsonOut     = flag.String("json", "", "write results to a JSON archive")
		compare     = flag.String("compare", "", "compare against a previous JSON archive")
		tolerance   = flag.Float64("tolerance", 0.05, "relative drift threshold for -compare")
		csv         = flag.Bool("csv", false, "emit CSV")
		scaleout    = flag.Bool("scaleout", false, "run the machine-size sweep too")
		nodeStats   = flag.Bool("node-stats", false, "print per-node utilization tables (highest MPL)")
		benchOut    = flag.String("bench-out", "", "run the kernel microbenchmark suite and write a JSON report")
		open        = flag.Bool("open", false, "run the open-system serving campaign instead of the closed MPL sweep")
		arrival     = flag.String("arrival", "poisson", "open arrival process: poisson, bursty, or diurnal")
		lambdaList  = flag.String("lambda", "", "comma-separated offered loads in q/s (default 100,200,400,800)")
		tenants     = flag.Int("tenants", 0, "open-system tenant count (default 4)")
		sloMS       = flag.Float64("slo-ms", 0, "open-system latency SLO in milliseconds (default 1000)")
		governor    = flag.Int("governor", 0, "open-system MPL governor: concurrent-execution cap (default 64)")
		tsWindow    = flag.Duration("ts-window", 0, "arm windowed telemetry with this sampling window (e.g. 250ms; 0 = off)")
		tsDir       = flag.String("ts-dir", "", "write per-point CSV time-series files into this directory (implies telemetry)")
		metricsAddr = flag.String("metrics-addr", "", "serve live OpenMetrics on this address at /metrics (implies telemetry)")
		metricsLing = flag.Duration("metrics-linger", 0, "keep the /metrics endpoint up this long after the campaign")
		heatmap     = flag.Bool("heatmap", false, "arm fragment heat accounting and print per-strategy heatmap tables")
		heatmapDir  = flag.String("heatmap-dir", "", "write per-strategy fragment heat CSVs into this directory (implies -heatmap)")
		heatTopK    = flag.Int("heat-topk", 0, "hot-fragment report size (default 5; implies -heatmap)")
		share       = flag.Bool("share", false, "run the shared-scan campaign (sharing off vs on per strategy)")
		elastic     = flag.Bool("elastic", false, "run the elasticity campaign (join + decommission under open load)")
		joinAt      = flag.Duration("join-at", 0, "standby join offset (default 300ms; negative disables)")
		leaveAt     = flag.Duration("leave-at", 0, "decommission offset (default 3x -join-at; negative disables)")
		leaveNode   = flag.Int("leave-node", 0, "member decommissioned at -leave-at (default 1)")
		migrateRate = flag.Int("migrate-rate", 0, "background copier throttle in pages/second (0 = rebalance default)")
		sizeList    = flag.String("sizes", "", "comma-separated initial cluster sizes (default -procs)")
		shareWindow = flag.Duration("share-window", 0, "shared-scan batching window in simulated time (0 = gamma default)")
		faultsKs    = flag.String("faults", "", `degraded-mode campaign: comma-separated failed-disk counts, e.g. "0,1,2"`)
		mtbf        = flag.Duration("mtbf", 0, "mean time between stochastic transient disk read errors (0 = off)")
		killDisk    = flag.String("kill-disk", "", `fail-stop disks: comma-separated "n@t[+d]" items, e.g. "3@10ms" or "0@5ms+200ms"`)
		killNode    = flag.String("kill-node", "", `crash nodes: comma-separated "n@t[+d]" items (restart after +d, else down for the run)`)
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
		httpPprof   = flag.String("httppprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench:", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench:", err)
			}
			f.Close()
		}()
	}
	if *httpPprof != "" {
		go func() {
			if err := http.ListenAndServe(*httpPprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof server on http://%s/debug/pprof/\n", *httpPprof)
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	opts, err := buildOptions(*scale, *card, *procs, *mplList, *measure, *warmup, *seed, seedSet)
	if err != nil {
		return fail(err)
	}
	figs, err := selectFigures(*figList)
	if err != nil {
		return fail(err)
	}
	// A full open sweep over all nine figures at paper scale would dwarf the
	// closed-loop campaign, so -open without -fig defaults to figure 8a.
	if *open && *figList == "" {
		fig, err := experiments.FigureByID("8a")
		if err != nil {
			return fail(err)
		}
		figs = []experiments.Figure{fig}
	}
	// The sharing campaign runs every point twice (off and on); default it
	// to the Moderate-Low figure, where batch overlap is most visible.
	if *share && *figList == "" {
		fig, err := experiments.FigureByID("11a")
		if err != nil {
			return fail(err)
		}
		figs = []experiments.Figure{fig}
	}
	// The elasticity campaign serves one offered load per point with two
	// copy windows inside it; default to one figure as -open does.
	if *elastic && *figList == "" {
		fig, err := experiments.FigureByID("8a")
		if err != nil {
			return fail(err)
		}
		figs = []experiments.Figure{fig}
	}
	oopts, err := buildOpenOptions(*arrival, *lambdaList, *tenants, *sloMS, *governor)
	if err != nil {
		return fail(err)
	}
	spec, err := buildFaultSpec(*mtbf, *killDisk, *killNode)
	if err != nil {
		return fail(err)
	}
	if spec.Enabled() {
		opts.ArmFaults(spec, true)
	}
	if *share && (spec.Enabled() || *faultsKs != "" || *open) {
		return fail(fmt.Errorf("-share is mutually exclusive with fault flags and -open (sharing rides the legacy scheduler)"))
	}
	if *elastic && (*open || *share || *faultsKs != "") {
		return fail(fmt.Errorf("-elastic is mutually exclusive with -open, -share and -faults (one campaign mode per run)"))
	}
	if *migrateRate < 0 {
		return fail(fmt.Errorf("negative -migrate-rate %d", *migrateRate))
	}
	sizes, err := parseSizes(*sizeList)
	if err != nil {
		return fail(err)
	}
	if *shareWindow < 0 {
		return fail(fmt.Errorf("negative -share-window %v", *shareWindow))
	}
	if *tsWindow < 0 {
		return fail(fmt.Errorf("negative -ts-window %v", *tsWindow))
	}
	if *tsWindow > 0 || *tsDir != "" || *metricsAddr != "" {
		w := *tsWindow
		if w <= 0 {
			w = 250 * time.Millisecond
		}
		opts.ArmTelemetry(float64(w)/float64(time.Millisecond), 0, 0)
	}
	if *heatTopK < 0 {
		return fail(fmt.Errorf("negative -heat-topk %d", *heatTopK))
	}
	if *heatmap || *heatmapDir != "" || *heatTopK > 0 {
		opts.ArmHeat(*heatTopK)
	}
	var hub *obs.Hub
	if *metricsAddr != "" {
		hub = obs.NewHub()
		mux := http.NewServeMux()
		mux.Handle("/metrics", hub)
		// Listen synchronously so the endpoint is scrapeable the moment the
		// banner prints (CI polls it right after startup).
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fail(err)
		}
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench: metrics server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving OpenMetrics on http://%s/metrics\n", ln.Addr())
	}

	exit := 0
	if *benchOut != "" {
		fmt.Fprintln(os.Stderr, "running kernel microbenchmark suite...")
		if err := runBenchSuite(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "declusterbench:", err)
			exit = 1
		}
	}
	archive := experiments.Archive{Label: "declusterbench", Options: opts}
	var manifests []harness.Manifest

	if *open {
		if len(figs) == 0 {
			return fail(fmt.Errorf(`-open needs at least one figure (drop "-fig none")`))
		}
		fmt.Fprintf(os.Stderr, "running open-system campaign (%s arrivals, λ=%v) on %d workers...\n",
			oopts.Arrival, oopts.Lambdas, workersFor(*parallel))
		campaign, err := experiments.RunOpenSystem(figs, opts, oopts, experiments.CampaignOptions{
			Workers:    *parallel,
			JobTimeout: *timeout,
			Progress:   os.Stderr,
			Label:      "open",
			Hub:        hub,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "declusterbench:", err)
			exit = 1
		}
		manifests = append(manifests, campaign.Manifest)
		if *tsDir != "" {
			if err := writeTimeSeriesCSVs(*tsDir, campaign.Manifest); err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench:", err)
				exit = 1
			}
		}
		for _, res := range campaign.Figures {
			if *csv {
				fmt.Print(res.Table().CSV())
			} else {
				fmt.Println(res.Table().String())
			}
			for _, n := range res.Notes {
				fmt.Printf("  %s\n", n)
			}
			if *detail {
				if *csv {
					fmt.Print(res.DetailTable().CSV())
				} else {
					fmt.Println(res.DetailTable().String())
				}
			}
			fmt.Println()
			if *csv {
				fmt.Print(res.SummaryTable().CSV())
			} else {
				fmt.Println(res.SummaryTable().String())
			}
			fmt.Println()
			printOpenTelemetry(res, *csv)
			printOpenHeat(res, *csv)
		}
		if *heatmapDir != "" {
			if err := writeHeatCSVs(*heatmapDir, openHeatFiles(campaign.Figures)); err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench:", err)
				exit = 1
			}
		}
	} else if *elastic {
		if len(figs) == 0 {
			return fail(fmt.Errorf(`-elastic needs at least one figure (drop "-fig none")`))
		}
		eopts := experiments.ElasticOptions{
			Arrival:      oopts.Arrival,
			Tenants:      oopts.Tenants,
			SLOms:        oopts.SLOms,
			MaxInService: oopts.MaxInService,
			JoinAt:       sim.Duration(*joinAt),
			LeaveAt:      sim.Duration(*leaveAt),
			LeaveNode:    *leaveNode,
			MigrateRate:  *migrateRate,
			Sizes:        sizes,
		}
		if len(oopts.Lambdas) > 0 {
			eopts.Lambda = oopts.Lambdas[0]
		}
		fmt.Fprintf(os.Stderr, "running elasticity campaign (%s arrivals) on %d workers...\n",
			oopts.Arrival, workersFor(*parallel))
		campaign, err := experiments.RunElastic(figs, opts, eopts, experiments.CampaignOptions{
			Workers:    *parallel,
			JobTimeout: *timeout,
			Progress:   os.Stderr,
			Label:      "elastic",
			Hub:        hub,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "declusterbench:", err)
			exit = 1
		}
		manifests = append(manifests, campaign.Manifest)
		if *tsDir != "" {
			if err := writeTimeSeriesCSVs(*tsDir, campaign.Manifest); err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench:", err)
				exit = 1
			}
		}
		for _, res := range campaign.Figures {
			if *csv {
				fmt.Print(res.Table().CSV())
			} else {
				fmt.Println(res.Table().String())
			}
			for _, n := range res.Notes {
				fmt.Printf("  %s\n", n)
			}
			for _, p := range res.Points {
				if p.Summary != "" {
					fmt.Printf("fig%s/%s n=%d %s\n", res.Figure.ID, p.Strategy, p.Size, p.Summary)
				}
			}
			fmt.Println()
		}
	} else if *faultsKs != "" {
		if len(figs) == 0 {
			return fail(fmt.Errorf(`-faults needs at least one figure (drop "-fig none")`))
		}
		ks, err := parseKs(*faultsKs)
		if err != nil {
			return fail(err)
		}
		for _, fig := range figs {
			fmt.Fprintf(os.Stderr, "running degraded campaign for figure %s (k=%v) on %d workers...\n",
				fig.ID, ks, workersFor(*parallel))
			dres, manifest, err := experiments.RunDegraded(fig, ks, opts, experiments.CampaignOptions{
				Workers:    *parallel,
				JobTimeout: *timeout,
				Progress:   os.Stderr,
				Label:      "degraded/" + fig.ID,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench:", err)
				exit = 1
			}
			manifests = append(manifests, manifest)
			if *csv {
				fmt.Print(dres.Table().CSV())
			} else {
				fmt.Println(dres.Table().String())
			}
			fmt.Printf("fault outcomes: %s\n\n", dres.Outcomes())
		}
	} else if *share {
		if len(figs) == 0 {
			return fail(fmt.Errorf(`-share needs at least one figure (drop "-fig none")`))
		}
		windowMS := float64(*shareWindow) / float64(time.Millisecond)
		for _, fig := range figs {
			fmt.Fprintf(os.Stderr, "running shared-scan campaign for figure %s on %d workers...\n",
				fig.ID, workersFor(*parallel))
			sres, manifest, err := experiments.RunSharing(fig, windowMS, opts, experiments.CampaignOptions{
				Workers:    *parallel,
				JobTimeout: *timeout,
				Progress:   os.Stderr,
				Label:      "sharing/" + fig.ID,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench:", err)
				exit = 1
			}
			manifests = append(manifests, manifest)
			if *csv {
				fmt.Print(sres.Table().CSV())
			} else {
				fmt.Println(sres.Table().String())
			}
			for _, line := range sres.Summary() {
				fmt.Println(line)
			}
			saved, best := sres.MaxSaved()
			fmt.Printf("sharing best: %.1f%% disk reads saved (%s fig%s MPL %d)\n\n",
				100*saved, best.Strategy, fig.ID, best.MPL)
		}
	} else if len(figs) > 0 {
		fmt.Fprintf(os.Stderr, "running %d figures on %d workers...\n", len(figs), workersFor(*parallel))
		campaign, err := experiments.RunCampaign(figs, opts, experiments.CampaignOptions{
			Workers:    *parallel,
			JobTimeout: *timeout,
			Progress:   os.Stderr,
			Label:      "figures",
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "declusterbench:", err)
			exit = 1
		}
		manifests = append(manifests, campaign.Manifest)
		for _, res := range campaign.Figures {
			archive.Figures = append(archive.Figures, res.Archive())
			if *csv {
				fmt.Print(res.Table().CSV())
			} else {
				fmt.Println(res.Table().String())
			}
			for _, n := range res.Notes {
				fmt.Printf("  %s\n", n)
			}
			if *plot {
				fmt.Println()
				fmt.Println(res.Chart().String())
			}
			if *detail {
				if *csv {
					fmt.Print(res.DetailTable().CSV())
				} else {
					fmt.Println(res.DetailTable().String())
				}
			}
			if *nodeStats {
				printNodeStats(res, *csv)
			}
			if opts.Heat {
				printHeat(res, *csv)
			}
			fmt.Println()
		}
		if *heatmapDir != "" {
			if err := writeHeatCSVs(*heatmapDir, closedHeatFiles(campaign.Figures)); err != nil {
				fmt.Fprintln(os.Stderr, "declusterbench:", err)
				exit = 1
			}
		}
		if opts.Faults.Enabled() {
			var o gamma.Outcomes
			for _, res := range campaign.Figures {
				for _, p := range res.Points {
					o.OK += p.Result.Outcomes.OK
					o.Retried += p.Result.Outcomes.Retried
					o.TimedOut += p.Result.Outcomes.TimedOut
					o.Failed += p.Result.Outcomes.Failed
				}
			}
			fmt.Printf("fault outcomes: %s\n", o)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return fail(err)
		}
		if err := experiments.WriteArchive(f, archive); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			return fail(err)
		}
		baseline, err := experiments.ReadArchive(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		diffs := experiments.CompareArchives(baseline, archive, *tolerance)
		if len(diffs) == 0 {
			fmt.Printf("no throughput drifts beyond %.0f%% versus %s\n", *tolerance*100, *compare)
		} else {
			fmt.Printf("throughput drifts beyond %.0f%% versus %s:\n", *tolerance*100, *compare)
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
			exit = 1
		}
	}

	if *scaleout {
		fmt.Fprintln(os.Stderr, "running scale-out sweep...")
		res, manifest, err := experiments.RunScaleSweepParallel(
			experiments.DefaultScaleSweep(), opts, experiments.CampaignOptions{
				Workers:    *parallel,
				JobTimeout: *timeout,
				Progress:   os.Stderr,
				Label:      "scaleout",
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, "declusterbench:", err)
			exit = 1
		}
		manifests = append(manifests, manifest)
		if *csv {
			fmt.Print(res.Table().CSV())
		} else {
			fmt.Println(res.Table().String())
		}
	}

	if *manifestOut != "" && len(manifests) > 0 {
		merged := harness.Merge("declusterbench", manifests...)
		f, err := os.Create(*manifestOut)
		if err != nil {
			return fail(err)
		}
		if err := merged.Write(f); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d jobs, %d workers, %.2fx speedup vs serial)\n",
			*manifestOut, merged.Jobs, merged.Workers, merged.Speedup)
	}
	if hub != nil && *metricsLing > 0 {
		fmt.Fprintf(os.Stderr, "metrics endpoint lingering %v (%d runs registered)...\n",
			*metricsLing, len(hub.Runs()))
		time.Sleep(*metricsLing)
	}
	return exit
}

// printOpenTelemetry emits the time-resolved blocks of one open figure when
// its points carry telemetry: goodput-over-time and disk-skew-over-time at
// the highest offered load (where the time axis is most interesting), plus
// one SLO burn line per strategy at that load.
func printOpenTelemetry(res experiments.OpenFigureResult, csv bool) {
	if !res.HasTimeSeries() || len(res.Open.Lambdas) == 0 {
		return
	}
	lambda := res.Open.Lambdas[0]
	for _, l := range res.Open.Lambdas {
		if l > lambda {
			lambda = l
		}
	}
	for _, tb := range []interface {
		CSV() string
		String() string
	}{res.GoodputOverTime(lambda), res.SkewOverTime(lambda)} {
		if csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
	}
	for _, p := range res.Points {
		if p.Lambda != lambda || p.Result.Serve.Burn == nil {
			continue
		}
		b := p.Result.Serve.Burn
		line := fmt.Sprintf("slo burn %s λ=%g: %d/%d windows violated (max burn %.2f, budget %.2f)",
			p.Strategy, lambda, b.Violated, b.Windows, b.MaxBurnRate, b.Budget)
		if b.FirstViolation > 0 {
			line += fmt.Sprintf(", first violation at %v", sim.Duration(b.FirstViolation))
			if b.Recovery > 0 {
				line += fmt.Sprintf(", recovered at %v", sim.Duration(b.Recovery))
			} else {
				line += ", never recovered"
			}
		}
		fmt.Println(line)
	}
	fmt.Println()
}

// writeTimeSeriesCSVs writes one CSV file per job that carries telemetry,
// named after the job ID. It runs on the main goroutine over the manifest's
// canonical job order, so the files are identical at any worker count.
func writeTimeSeriesCSVs(dir string, manifest harness.Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for _, r := range manifest.Reports {
		if len(r.TimeSeries) == 0 {
			continue
		}
		path := filepath.Join(dir, strings.ReplaceAll(r.ID, "/", "_")+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := obs.WriteSeriesCSV(f, r.TimeSeries); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "wrote %d time-series CSV files to %s\n", n, dir)
	return nil
}

// printHeat emits each strategy's merged fragment heatmap plus its
// hot-fragments line.
func printHeat(res experiments.FigureResult, csv bool) {
	for _, s := range res.Figure.Strategies {
		snap := res.StrategyHeat(s)
		if snap == nil {
			continue
		}
		tb := res.HeatTable(s)
		if csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
		if line := experiments.HotLine(res.Figure.ID, s, snap); line != "" {
			fmt.Println(line)
		}
	}
}

// printOpenHeat is printHeat for open-system figures.
func printOpenHeat(res experiments.OpenFigureResult, csv bool) {
	for _, s := range res.Figure.Strategies {
		snap := res.StrategyHeat(s)
		if snap == nil {
			continue
		}
		tb := res.HeatTable(s)
		if csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
		if line := experiments.HotLine(res.Figure.ID, s, snap); line != "" {
			fmt.Println(line)
		}
	}
}

// heatFile is one (figure, strategy) merged heat snapshot destined for a
// CSV file in -heatmap-dir.
type heatFile struct {
	name string
	snap *obs.HeatSnapshot
}

// closedHeatFiles collects the merged per-strategy snapshots of a closed
// campaign in canonical (figure, strategy) order.
func closedHeatFiles(figures []experiments.FigureResult) []heatFile {
	var out []heatFile
	for _, res := range figures {
		for _, s := range res.Figure.Strategies {
			if snap := res.StrategyHeat(s); snap != nil {
				out = append(out, heatFile{"fig" + res.Figure.ID + "_" + s + "_heat.csv", snap})
			}
		}
	}
	return out
}

// openHeatFiles is closedHeatFiles for open-system figures.
func openHeatFiles(figures []experiments.OpenFigureResult) []heatFile {
	var out []heatFile
	for _, res := range figures {
		for _, s := range res.Figure.Strategies {
			if snap := res.StrategyHeat(s); snap != nil {
				out = append(out, heatFile{"fig" + res.Figure.ID + "_" + s + "_heat.csv", snap})
			}
		}
	}
	return out
}

// writeHeatCSVs writes one canonical-order fragment heat CSV per
// (figure, strategy). It runs on the main goroutine over figure order and
// the snapshots' rows are canonically sorted, so the files are
// byte-identical at any worker count.
func writeHeatCSVs(dir string, files []heatFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, hf := range files {
		f, err := os.Create(filepath.Join(dir, hf.name))
		if err != nil {
			return err
		}
		if err := obs.WriteHeatCSV(f, hf.snap); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d fragment heat CSV files to %s\n", len(files), dir)
	return nil
}

// printNodeStats emits each strategy's per-node utilization table at the
// sweep's highest MPL, where execution skew is most visible.
func printNodeStats(res experiments.FigureResult, csv bool) {
	mpls := res.Options.MPLs
	if len(mpls) == 0 {
		return
	}
	maxMPL := mpls[0]
	for _, m := range mpls {
		if m > maxMPL {
			maxMPL = m
		}
	}
	for _, s := range res.Figure.Strategies {
		tb := res.NodeTable(s, maxMPL)
		if tb == nil {
			continue
		}
		if csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
	}
}

// workersFor mirrors the harness default so the banner matches reality.
func workersFor(parallel int) int {
	if parallel > 0 {
		return parallel
	}
	return runtime.GOMAXPROCS(0)
}

func buildOptions(scale string, card, procs int, mplList string, measure, warmup int, seed int64, seedSet bool) (experiments.Options, error) {
	var opts experiments.Options
	switch scale {
	case "paper":
		opts = experiments.PaperScale()
	case "quick":
		opts = experiments.QuickScale()
	default:
		return opts, fmt.Errorf("unknown -scale %q (want paper or quick)", scale)
	}
	if card > 0 {
		opts.Cardinality = card
	}
	if procs > 0 {
		opts.Processors = procs
	}
	if measure > 0 {
		opts.MeasureQueries = measure
	}
	if warmup > 0 {
		opts.WarmupQueries = warmup
	}
	if seedSet {
		opts.Seed = seed
		opts.SeedSet = true
	}
	if mplList != "" {
		var mpls []int
		for _, s := range strings.Split(mplList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				return opts, fmt.Errorf("bad MPL %q", s)
			}
			mpls = append(mpls, v)
		}
		opts.MPLs = mpls
	}
	return opts, nil
}

// buildOpenOptions assembles the open-system campaign options from the
// -arrival, -lambda, -tenants, -slo-ms and -governor flags. Zero values
// defer to the experiments-package defaults.
func buildOpenOptions(arrival, lambdaList string, tenants int, sloMS float64, governor int) (experiments.OpenOptions, error) {
	kind, err := serve.ParseArrivalKind(arrival)
	if err != nil {
		return experiments.OpenOptions{}, err
	}
	oopts := experiments.OpenOptions{
		Arrival:      kind,
		Tenants:      tenants,
		SLOms:        sloMS,
		MaxInService: governor,
	}
	if tenants < 0 {
		return oopts, fmt.Errorf("negative -tenants %d", tenants)
	}
	if sloMS < 0 {
		return oopts, fmt.Errorf("negative -slo-ms %g", sloMS)
	}
	if governor < 0 {
		return oopts, fmt.Errorf("negative -governor %d", governor)
	}
	if lambdaList != "" {
		for _, s := range strings.Split(lambdaList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				return oopts, fmt.Errorf("bad -lambda %q (want positive numbers)", s)
			}
			oopts.Lambdas = append(oopts.Lambdas, v)
		}
	}
	return oopts, nil
}

func selectFigures(list string) ([]experiments.Figure, error) {
	if list == "" {
		return experiments.Figures(), nil
	}
	if list == "none" {
		return nil, nil
	}
	var out []experiments.Figure
	for _, id := range strings.Split(list, ",") {
		fig, err := experiments.FigureByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// buildFaultSpec assembles the run's fault spec from the -mtbf, -kill-disk
// and -kill-node flags. An all-defaults spec (Enabled() == false) leaves the
// run byte-identical to a fault-free build.
func buildFaultSpec(mtbf time.Duration, killDisk, killNode string) (*fault.Spec, error) {
	if mtbf < 0 {
		return nil, fmt.Errorf("negative -mtbf %v", mtbf)
	}
	spec := &fault.Spec{MTBF: sim.Duration(mtbf)}
	if err := parseKillList(killDisk, fault.DiskFail, spec); err != nil {
		return nil, fmt.Errorf("-kill-disk: %w", err)
	}
	if err := parseKillList(killNode, fault.NodeCrash, spec); err != nil {
		return nil, fmt.Errorf("-kill-node: %w", err)
	}
	return spec, nil
}

// parseKillList parses a comma-separated list of "n@t[+d]" items — node n
// fails at offset t, recovering d later when the +d suffix is present — and
// appends the corresponding events to spec. Durations use Go syntax
// (time.ParseDuration); simulation time is nanoseconds 1:1 with
// time.Duration.
func parseKillList(list string, kind fault.Kind, spec *fault.Spec) error {
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		ev, err := parseKill(item, kind)
		if err != nil {
			return err
		}
		spec.Events = append(spec.Events, ev)
	}
	return nil
}

func parseKill(s string, kind fault.Kind) (fault.Event, error) {
	i := strings.IndexByte(s, '@')
	if i < 0 {
		return fault.Event{}, fmt.Errorf("bad item %q (want n@t or n@t+d)", s)
	}
	node, err := strconv.Atoi(s[:i])
	if err != nil || node < 0 {
		return fault.Event{}, fmt.Errorf("bad node in %q", s)
	}
	at, rest := s[i+1:], ""
	if j := strings.IndexByte(at, '+'); j >= 0 {
		at, rest = at[:j], at[j+1:]
	}
	t, err := time.ParseDuration(at)
	if err != nil || t < 0 {
		return fault.Event{}, fmt.Errorf("bad offset in %q", s)
	}
	ev := fault.Event{At: sim.Duration(t), Kind: kind, Node: node}
	if rest != "" {
		d, err := time.ParseDuration(rest)
		if err != nil || d <= 0 {
			return fault.Event{}, fmt.Errorf("bad recovery duration in %q", s)
		}
		ev.Dur = sim.Duration(d)
	}
	return ev, nil
}

// parseSizes parses the -sizes list of initial cluster sizes.
func parseSizes(list string) ([]int, error) {
	if list == "" {
		return nil, nil
	}
	var sizes []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -sizes entry %q (want positive integers)", s)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}

// parseKs parses the -faults list of failed-disk counts.
func parseKs(list string) ([]int, error) {
	var ks []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -faults count %q (want non-negative integers)", s)
		}
		ks = append(ks, v)
	}
	return ks, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "declusterbench:", err)
	return 1
}
