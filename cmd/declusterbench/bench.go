package main

// Kernel microbenchmark mode (-bench-out): runs the simulation kernel's
// fast-path benchmarks — the same shapes internal/sim's go-test benchmarks
// measure — through testing.Benchmark and archives the results as JSON next
// to figure archives. The suite rides the harness machinery: each benchmark
// is one harness job, so the report carries the usual environment snapshot
// and per-job manifest, making committed baselines comparable across
// machines and Go releases.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
)

// BenchResult is one benchmark's archived measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the JSON document -bench-out writes.
type BenchReport struct {
	Label      string           `json:"label"`
	Env        harness.Env      `json:"env"`
	Benchmarks []BenchResult    `json:"benchmarks"`
	Manifest   harness.Manifest `json:"manifest"`
}

// kernelBenchmarks is the committed-baseline suite: one entry per kernel
// fast path. Kept in sync with internal/sim's benchmarks by name.
func kernelBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"EventThroughput", benchEventThroughput},
		{"FacilityContention", benchFacilityContention},
		{"MailboxPingPong", benchMailboxPingPong},
		{"ScheduleCallback", benchScheduleCallback},
		{"ScheduleHandler", benchScheduleHandler},
		{"ReadyRingWake", benchReadyRingWake},
		{"SpanDisabled", benchSpanDisabled},
	}
}

func benchEventThroughput(b *testing.B) {
	e := sim.New()
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(sim.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchFacilityContention(b *testing.B) {
	e := sim.New()
	f := sim.NewFacility(e, "cpu")
	per := b.N/16 + 1
	for w := 0; w < 16; w++ {
		e.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				f.Use(p, sim.Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchMailboxPingPong(b *testing.B) {
	e := sim.New()
	ping := sim.NewMailbox[int](e, "ping")
	pong := sim.NewMailbox[int](e, "pong")
	e.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Put(i)
			pong.Get(p)
		}
	})
	e.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Get(p)
			pong.Put(i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchScheduleCallback(b *testing.B) {
	e := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Microsecond, fn)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

type benchTick struct{ n int }

func (h *benchTick) HandleEvent() { h.n++ }

func benchScheduleHandler(b *testing.B) {
	e := sim.New()
	h := &benchTick{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleHandler(sim.Microsecond, h)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReadyRingWake(b *testing.B) {
	e := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(0, fn)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSpanDisabled(b *testing.B) {
	e := sim.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := e.StartSpan()
		s.End(0, "cat", "name", 0, "")
	}
}

// runBenchSuite executes the kernel suite serially (Workers: 1 — benchmarks
// must not contend with each other) and writes the JSON report to path.
func runBenchSuite(path string) error {
	suite := kernelBenchmarks()
	jobs := make([]harness.Job, len(suite))
	results := make([]BenchResult, len(suite))
	for i, bm := range suite {
		i, bm := i, bm
		jobs[i] = harness.Job{
			ID: "simbench/" + bm.name,
			Run: func() (any, error) {
				r := testing.Benchmark(bm.fn)
				if r.N == 0 {
					return nil, fmt.Errorf("benchmark %s did not run", bm.name)
				}
				results[i] = BenchResult{
					Name:        bm.name,
					Iterations:  r.N,
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
				}
				return nil, nil
			},
		}
	}
	_, manifest, err := harness.Execute(jobs, harness.Options{
		Workers:  1,
		Progress: os.Stderr,
		Label:    "simbench",
	})
	if err != nil {
		return err
	}
	if err := manifest.Err(); err != nil {
		return err
	}
	report := BenchReport{
		Label:      "simbench",
		Env:        harness.CaptureEnv(),
		Benchmarks: results,
		Manifest:   manifest,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", path, len(results))
	for _, r := range results {
		fmt.Printf("%-24s %12d iters %12.1f ns/op %6d B/op %5d allocs/op\n",
			r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return nil
}
