package main

// Kernel microbenchmark mode (-bench-out): runs the simulation kernel's
// fast-path benchmarks — the same shapes internal/sim's go-test benchmarks
// measure — through testing.Benchmark and archives the results as JSON next
// to figure archives. The suite rides the harness machinery: each benchmark
// is one harness job, so the report carries the usual environment snapshot
// and per-job manifest, making committed baselines comparable across
// machines and Go releases.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/rebalance"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/storage"
)

// BenchResult is one benchmark's archived measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// ArrivalsPerSec is published for the serving-layer benchmark
	// (OpenArrivals): admitted arrivals processed per wall-clock second,
	// i.e. 1e9 / NsPerOp. Zero for the kernel fast-path entries.
	ArrivalsPerSec float64 `json:"arrivals_per_sec,omitempty"`
}

// BenchReport is the JSON document -bench-out writes.
type BenchReport struct {
	Label      string           `json:"label"`
	Env        harness.Env      `json:"env"`
	Benchmarks []BenchResult    `json:"benchmarks"`
	Manifest   harness.Manifest `json:"manifest"`
}

// kernelBenchmarks is the committed-baseline suite: one entry per kernel
// fast path. Kept in sync with internal/sim's benchmarks by name.
func kernelBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"EventThroughput", benchEventThroughput},
		{"FacilityContention", benchFacilityContention},
		{"MailboxPingPong", benchMailboxPingPong},
		{"ScheduleCallback", benchScheduleCallback},
		{"ScheduleHandler", benchScheduleHandler},
		{"ReadyRingWake", benchReadyRingWake},
		{"SpanDisabled", benchSpanDisabled},
		{"SamplerSample", benchSamplerSample},
		{"HeatSample", benchHeatSample},
		{"SharedScanBatch", benchSharedScanBatch},
		{"MigrationStep", benchMigrationStep},
		{"OpenArrivals", benchOpenArrivals},
		{"OpenArrivalsSampled", benchOpenArrivalsSampled},
	}
}

func benchEventThroughput(b *testing.B) {
	e := sim.New()
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(sim.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchFacilityContention(b *testing.B) {
	e := sim.New()
	f := sim.NewFacility(e, "cpu")
	per := b.N/16 + 1
	for w := 0; w < 16; w++ {
		e.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				f.Use(p, sim.Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchMailboxPingPong(b *testing.B) {
	e := sim.New()
	ping := sim.NewMailbox[int](e, "ping")
	pong := sim.NewMailbox[int](e, "pong")
	e.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Put(i)
			pong.Get(p)
		}
	})
	e.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ping.Get(p)
			pong.Put(i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchScheduleCallback(b *testing.B) {
	e := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Microsecond, fn)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

type benchTick struct{ n int }

func (h *benchTick) HandleEvent() { h.n++ }

func benchScheduleHandler(b *testing.B) {
	e := sim.New()
	h := &benchTick{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleHandler(sim.Microsecond, h)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReadyRingWake(b *testing.B) {
	e := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(0, fn)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSpanDisabled(b *testing.B) {
	e := sim.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := e.StartSpan()
		s.End(0, "cat", "name", 0, "")
	}
}

// benchSamplerSample measures one telemetry sampling tick over a machine-
// scale probe set (32 nodes x 2 rate probes plus gauges — the shape an open
// run with telemetry pays every window). The hot path must stay
// allocation-free: rings are preallocated and probes are plain closures.
func benchSamplerSample(b *testing.B) {
	s := obs.NewSampler(int64(250*sim.Millisecond), obs.DefaultCapacity)
	var c float64
	for i := 0; i < 64; i++ {
		s.Register(fmt.Sprintf("rate%d", i), obs.SeriesRate, func() float64 { c++; return c })
	}
	for i := 0; i < 64; i++ {
		s.Register(fmt.Sprintf("gauge%d", i), obs.SeriesGauge, func() float64 { return c })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(int64(i+1) * int64(250*sim.Millisecond))
	}
}

// benchHeatSample measures one fragment-heat accounting step: the buffer
// hit/miss counters, queue-wait attribution and the per-read Account call —
// what every page access pays when heat is armed. The hot path must stay
// allocation-free (0 allocs/op); the histogram's wait bucket is pre-warmed
// so bucket growth doesn't count against the steady state.
func benchHeatSample(b *testing.B) {
	hm := obs.NewHeatMap()
	h := hm.Frag("bench", 0, obs.FragPrimary)
	h.DiskWait(int64(sim.Millisecond))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.BufferHit()
		h.BufferMiss()
		h.DiskWait(int64(sim.Millisecond))
		h.Account(2, 1, 512, i&1 == 1)
	}
}

// benchSharedScanBatch measures one full shared-scan cycle on a two-node
// exec machine: 8 concurrent identical selections enqueued on the manager,
// window-flushed, executed as one deduplicated disk pass, and demultiplexed
// back to their coordinators. Mirrors internal/exec's
// BenchmarkSharedScanBatch by name and shape.
func benchSharedScanBatch(b *testing.B) {
	eng := sim.New()
	params := hw.DefaultParams()
	params.NumProcessors = 2
	costs := exec.DefaultCosts()
	streams := rng.NewFactory(5)
	cpus := make([]*hw.CPU, 3)
	for i := 0; i < 2; i++ {
		cpus[i] = hw.NewCPU(eng, "cpu", params)
	}
	net := hw.NewNetwork(eng, params, cpus)
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	placement := core.NewRangeForRelation(rel, storage.Unique1, 2)
	layout := storage.Layout{TuplesPerPage: 8, IndexFanout: 8, IndexLeafCap: 8}
	for i := 0; i < 2; i++ {
		disk := hw.NewDisk(eng, "disk", params, cpus[i], streams.Stream("lat"))
		pool := buffer.NewPool(eng, "buf", 16, disk)
		n := exec.NewNode(eng, i, params, costs, net, cpus[i], disk, pool)
		var tuples []storage.Tuple
		for _, tup := range rel.Tuples {
			if placement.HomeOf(tup) == i {
				tuples = append(tuples, tup)
			}
		}
		alloc := storage.NewAllocator(10000)
		frag := storage.BuildFragment(i, tuples, storage.Unique2, layout, alloc)
		frag.AddIndex(storage.Unique2, alloc)
		frag.AddIndex(storage.Unique1, alloc)
		n.AddFragment(rel.Name, frag)
		n.Start()
	}
	host := exec.NewHost(eng, 2, params, net, costs)
	host.AddRelation(rel.Name, placement)
	host.Start()
	host.EnableSharing(2 * sim.Millisecond)
	pred := core.Predicate{Attr: storage.Unique2, Lo: 40, Hi: 79}
	chooser := func(core.Predicate) exec.AccessKind { return exec.AccessClustered }
	eng.Spawn("bench", func(p *sim.Proc) {
		done := sim.NewMailbox[int](eng, "bench.done")
		for i := 0; i < b.N; i++ {
			for k := 0; k < 8; k++ {
				eng.Spawn("q", func(qp *sim.Proc) {
					host.Execute(qp, pred, chooser)
					done.Put(1)
				})
			}
			for k := 0; k < 8; k++ {
				done.Get(p)
			}
		}
		eng.Stop()
	})
	b.ReportAllocs()
	b.ResetTimer()
	horizon := sim.Duration(b.N)*sim.Second + 60*sim.Second
	if err := eng.RunUntil(sim.Time(horizon)); err != nil {
		b.Fatal(err)
	}
}

// benchNopIO is free page I/O, so the migration benchmark isolates the
// copier itself (throttle hold, dispatch, counters) from disk latency.
type benchNopIO struct{}

func (benchNopIO) ReadPage(p *sim.Proc, node, page int) error  { return nil }
func (benchNopIO) WritePage(p *sim.Proc, node, page int) error { return nil }

// benchMigrationStep measures the rebalance copier's per-page cost with an
// instantaneous rate, so the sim clock, not the throttle budget, bounds
// throughput. Mirrors internal/rebalance's BenchmarkMigrationStep by name
// and shape.
func benchMigrationStep(b *testing.B) {
	eng := sim.New()
	cp := &rebalance.Copier{IO: benchNopIO{}, RatePagesPerSec: 1 << 30, PageBytes: 8192}
	moves := make([]rebalance.TupleMove, 64)
	for i := range moves {
		moves[i] = rebalance.TupleMove{Src: 0, Dst: 1, SrcPage: i, DstPage: i}
	}
	plan := rebalance.BuildPlan(moves)
	pages := plan.Pages()
	eng.Spawn("bench", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i += pages {
			if err := cp.Run(p, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportAllocs()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchServeBackend is a minimal serve.Executor: a fixed 1ms simulated
// service with no machine behind it, so the benchmark isolates the serving
// layer itself (arrival generation, admission, WRR dispatch, SLO
// accounting) from operator execution.
type benchServeBackend struct{}

func (benchServeBackend) Execute(p *sim.Proc, pred core.Predicate, access exec.AccessChooser) exec.QueryResult {
	start := p.Now()
	p.Hold(sim.Millisecond)
	return exec.QueryResult{Pred: pred, Submitted: start, Completed: p.Now()}
}

// benchOpenArrivals measures the serving layer end to end: one op is one
// admitted arrival carried through to completion. Mirrors the serve
// package's BenchmarkOpenArrivals by name and shape.
func benchOpenArrivals(b *testing.B) {
	cfg := serve.Config{
		Arrival:        serve.ArrivalSpec{Kind: serve.Poisson, RateQPS: 2000},
		Tenants:        serve.DefaultTenants(4),
		MaxInService:   8,
		MaxQueue:       64,
		SLOms:          100,
		MeasureQueries: b.N,
		MaxSimTime:     sim.Duration(b.N+1000) * sim.Millisecond,
		Sample: func(src *rng.Source) (core.Predicate, string) {
			lo := int64(src.Intn(1000))
			return core.Predicate{Attr: 1, Lo: lo, Hi: lo}, "bench"
		},
		Access: func(core.Predicate) exec.AccessKind { return exec.AccessClustered },
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := serve.Run(sim.New(), rng.NewFactory(1), cfg, benchServeBackend{})
	if err != nil {
		b.Fatal(err)
	}
	if res.SLO.Completed < int64(b.N) {
		b.Fatalf("completed %d of %d", res.SLO.Completed, b.N)
	}
}

// benchOpenArrivalsSampled is benchOpenArrivals with telemetry armed: the
// serving layer registers its probes on a sampler and drives a sampling
// window every simulated 250ms, plus the SLO burn evaluator. The acceptance
// bar is <5% regression versus the unsampled run.
func benchOpenArrivalsSampled(b *testing.B) {
	cfg := serve.Config{
		Arrival:        serve.ArrivalSpec{Kind: serve.Poisson, RateQPS: 2000},
		Tenants:        serve.DefaultTenants(4),
		MaxInService:   8,
		MaxQueue:       64,
		SLOms:          100,
		MeasureQueries: b.N,
		MaxSimTime:     sim.Duration(b.N+1000) * sim.Millisecond,
		Telemetry:      obs.NewSampler(int64(250*sim.Millisecond), obs.DefaultCapacity),
		Sample: func(src *rng.Source) (core.Predicate, string) {
			lo := int64(src.Intn(1000))
			return core.Predicate{Attr: 1, Lo: lo, Hi: lo}, "bench"
		},
		Access: func(core.Predicate) exec.AccessKind { return exec.AccessClustered },
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := serve.Run(sim.New(), rng.NewFactory(1), cfg, benchServeBackend{})
	if err != nil {
		b.Fatal(err)
	}
	if res.SLO.Completed < int64(b.N) {
		b.Fatalf("completed %d of %d", res.SLO.Completed, b.N)
	}
}

// runBenchSuite executes the kernel suite serially (Workers: 1 — benchmarks
// must not contend with each other) and writes the JSON report to path.
func runBenchSuite(path string) error {
	suite := kernelBenchmarks()
	jobs := make([]harness.Job, len(suite))
	results := make([]BenchResult, len(suite))
	for i, bm := range suite {
		i, bm := i, bm
		jobs[i] = harness.Job{
			ID: "simbench/" + bm.name,
			Run: func() (any, error) {
				r := testing.Benchmark(bm.fn)
				if r.N == 0 {
					return nil, fmt.Errorf("benchmark %s did not run", bm.name)
				}
				results[i] = BenchResult{
					Name:        bm.name,
					Iterations:  r.N,
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
				}
				if bm.name == "OpenArrivals" && results[i].NsPerOp > 0 {
					results[i].ArrivalsPerSec = 1e9 / results[i].NsPerOp
				}
				return nil, nil
			},
		}
	}
	_, manifest, err := harness.Execute(jobs, harness.Options{
		Workers:  1,
		Progress: os.Stderr,
		Label:    "simbench",
	})
	if err != nil {
		return err
	}
	if err := manifest.Err(); err != nil {
		return err
	}
	report := BenchReport{
		Label:      "simbench",
		Env:        harness.CaptureEnv(),
		Benchmarks: results,
		Manifest:   manifest,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", path, len(results))
	for _, r := range results {
		fmt.Printf("%-24s %12d iters %12.1f ns/op %6d B/op %5d allocs/op\n",
			r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.ArrivalsPerSec > 0 {
			fmt.Printf("%-24s %.0f arrivals/sec\n", "", r.ArrivalsPerSec)
		}
	}
	return nil
}
