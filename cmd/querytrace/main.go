// Command querytrace executes a single query under each declustering
// strategy on an otherwise idle machine and prints the full event trace —
// every CPU service, disk access, and network packet — so the execution
// paradigms of Sections 2–4 can be inspected side by side (range fanning
// out to every node, BERD's sequential two-step auxiliary lookup, MAGIC's
// grid-directory localization).
//
// Usage:
//
//	querytrace [flags]
//
//	-attr A|B         predicate attribute (default B)
//	-lo N -width W    predicate range [lo, lo+width)
//	-card N           relation cardinality (default 20000)
//	-procs N          processors (default 32)
//	-corr low|high    attribute correlation
//	-strategy s       run only one strategy (magic|berd|range|hash)
//	-quiet            summary only, no event trace
//	-trace-out FILE   write a Chrome trace-event JSON file (open it at
//	                  ui.perfetto.dev or chrome://tracing); each strategy
//	                  becomes one process row, each node×resource one track
//	-trace-jsonl FILE write raw trace events as JSON Lines
//	-critpath         print a critical-path latency breakdown per strategy:
//	                  the query's end-to-end time attributed to disk, CPU,
//	                  network and buffer activity, with uncovered time
//	                  reported as queue-wait
//	-frags            print a per-fragment usage breakdown per strategy:
//	                  which fragments the query touched, pages and busy
//	                  time per fragment, and which queries made each
//	                  fragment hot (per-query attribution)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/gamma"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		attrName   = flag.String("attr", "B", "predicate attribute: A or B")
		lo         = flag.Int64("lo", 1000, "predicate lower bound")
		width      = flag.Int64("width", 10, "predicate width (tuples)")
		card       = flag.Int("card", 20000, "relation cardinality")
		procs      = flag.Int("procs", 32, "processors")
		corr       = flag.String("corr", "low", "attribute correlation: low or high")
		strategy   = flag.String("strategy", "", "run a single strategy")
		quiet      = flag.Bool("quiet", false, "suppress the event trace")
		traceOut   = flag.String("trace-out", "", "write Chrome trace-event JSON to this file")
		traceJSONL = flag.String("trace-jsonl", "", "write trace events as JSON Lines to this file")
		critPath   = flag.Bool("critpath", false, "print the critical-path latency breakdown")
		frags      = flag.Bool("frags", false, "print the per-fragment usage breakdown")
	)
	flag.Parse()

	var attr int
	switch *attrName {
	case "A", "a":
		attr = storage.Unique1
	case "B", "b":
		attr = storage.Unique2
	default:
		fatal(fmt.Errorf("unknown attribute %q (want A or B)", *attrName))
	}
	pred := core.Predicate{Attr: attr, Lo: *lo, Hi: *lo + *width - 1}

	window := 0
	if *corr == "high" {
		window = *card / 1000
		if window < 1 {
			window = 1
		}
	}
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: *card, CorrelationWindow: window, Seed: 1,
	})
	mix := workload.LowLow(*card)
	opts := experiments.QuickScale()
	opts.Cardinality = *card
	opts.Processors = *procs

	strategies := []string{experiments.StrategyMAGIC, experiments.StrategyBERD, experiments.StrategyRange}
	if *strategy != "" {
		strategies = []string{*strategy}
	}

	var chrome *obs.ChromeTracer
	if *traceOut != "" {
		chrome = obs.NewChromeTracer()
	}
	var jsonl *obs.JSONLSink
	if *traceJSONL != "" {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		jsonl = obs.NewJSONLSink(f)
	}

	for _, name := range strategies {
		pl, err := experiments.BuildPlacement(name, rel, mix, opts)
		if err != nil {
			fatal(err)
		}
		cfg := gamma.DefaultConfig()
		cfg.HW.NumProcessors = *procs
		cfg.Metrics = true
		machine, err := gamma.Build(rel, pl, cfg)
		if err != nil {
			fatal(err)
		}
		node := plan.NewIndexScan(rel.Name, pred, mix.AccessChooser()(pred))
		fmt.Printf("=== %s: %v ===\n", name, pred)
		fmt.Print(node.Explain())
		var sinks obs.MultiSink
		if !*quiet {
			sinks = append(sinks, obs.SinkFunc(printEvent))
		}
		if chrome != nil {
			chrome.BeginProcess(name)
			sinks = append(sinks, chrome)
		}
		if jsonl != nil {
			sinks = append(sinks, jsonl)
		}
		var coll *obs.Collector
		if *critPath || *frags {
			coll = &obs.Collector{}
			sinks = append(sinks, coll)
		}
		if len(sinks) == 1 {
			machine.Eng.SetSink(sinks[0])
		} else if len(sinks) > 1 {
			machine.Eng.SetSink(sinks)
		}
		var res exec.QueryResult
		machine.Eng.Spawn("probe", func(p *sim.Proc) {
			res = machine.Host.Submit(p, node)
			machine.Eng.Stop()
		})
		if err := machine.Eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
			fatal(err)
		}
		fmt.Printf("--> %d tuples in %.3fms using %d processors (%d auxiliary)\n\n",
			res.Tuples, res.ResponseMS(), res.ProcessorsUsed, res.AuxProcessors)
		if *critPath {
			printCritPath(coll.Events())
		}
		if *frags {
			// The result's own attribution — under chain-backup rerouting the
			// serving node can differ from the fragment's home, and this is
			// the list the fragment table must agree with.
			fmt.Println("served by:")
			for _, op := range res.ServedBy {
				fmt.Printf("  %s\n", op)
			}
			fmt.Println()
			printFragments(coll.Events())
		}
	}

	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fatal(err)
		}
	}
	if chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := chrome.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s (load at ui.perfetto.dev)\n", chrome.Len(), *traceOut)
	}
}

// printCritPath renders the critical-path breakdown of the collected trace:
// one row per query plus a percentage row attributing end-to-end latency to
// each resource class, with time covered by no resource span as queue-wait.
func printCritPath(events []obs.TraceEvent) {
	bds := obs.AnalyzeCriticalPath(events)
	if len(bds) == 0 {
		fmt.Println("critical path: no query spans in trace")
		return
	}
	ms := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
	fmt.Println("critical path (ms):")
	fmt.Printf("  %-8s %10s %10s %10s %10s %10s %10s\n",
		"query", "total", "disk", "cpu", "net", "buffer", "wait")
	for _, b := range bds {
		fmt.Printf("  %-8d %10s %10s %10s %10s %10s %10s\n",
			b.QueryID, ms(b.TotalNS), ms(b.DiskNS), ms(b.CPUNS),
			ms(b.NetNS), ms(b.BufferNS), ms(b.WaitNS))
	}
	s := obs.SummarizePaths(bds)
	if s.TotalNS > 0 {
		pct := func(ns int64) string {
			return fmt.Sprintf("%.1f%%", 100*float64(ns)/float64(s.TotalNS))
		}
		fmt.Printf("  %-8s %10s %10s %10s %10s %10s %10s\n\n",
			"share", "", pct(s.DiskNS), pct(s.CPUNS),
			pct(s.NetNS), pct(s.BufferNS), pct(s.WaitNS))
	}
}

// printFragments renders the per-fragment usage breakdown of the collected
// trace: each fragment the query set touched, hottest first by busy time,
// with the per-query attribution underneath — the answer to "which queries
// made fragment F hot".
func printFragments(events []obs.TraceEvent) {
	uses := obs.AnalyzeFragments(events)
	if len(uses) == 0 {
		fmt.Println("fragments: no fragment spans in trace")
		return
	}
	fmt.Println("fragment usage (hottest first):")
	fmt.Printf("  %-20s %6s %8s %8s %10s\n", "fragment", "ops", "pages", "tuples", "busy ms")
	for _, u := range uses {
		fmt.Printf("  %-20s %6d %8d %8d %10.3f\n",
			fmt.Sprintf("%s@n%d", u.Name, u.Node), u.Ops, u.Pages, u.Tuples,
			float64(u.BusyNS)/1e6)
		for _, q := range u.Queries {
			fmt.Printf("    query %-6d %6d ops %8d pages %10.3f ms\n",
				q.QueryID, q.Ops, q.Pages, float64(q.BusyNS)/1e6)
		}
	}
	fmt.Println()
}

// printEvent renders one trace event in the classic querytrace text format:
// timestamp, the emitting track (category + node), and the event name with
// duration and detail. String formatting lives here, at the edge — the
// simulation emits typed events only.
func printEvent(ev obs.TraceEvent) {
	who := ev.Category
	if ev.Node != obs.NoNode {
		who = fmt.Sprintf("%s%d", ev.Category, ev.Node)
	}
	what := ev.Name
	if ev.Kind == obs.KindSpan {
		what = fmt.Sprintf("%s [%.3fms]", what, float64(ev.Dur)/1e6)
	}
	if ev.Detail != "" {
		what += " (" + ev.Detail + ")"
	}
	fmt.Printf("  %10.3fms  %-12s %s\n", float64(ev.T)/1e6, who, what)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "querytrace:", err)
	os.Exit(1)
}
