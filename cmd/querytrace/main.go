// Command querytrace executes a single query under each declustering
// strategy on an otherwise idle machine and prints the full event trace —
// every CPU service, disk access, and network packet — so the execution
// paradigms of Sections 2–4 can be inspected side by side (range fanning
// out to every node, BERD's sequential two-step auxiliary lookup, MAGIC's
// grid-directory localization).
//
// Usage:
//
//	querytrace [flags]
//
//	-attr A|B       predicate attribute (default B)
//	-lo N -width W  predicate range [lo, lo+width)
//	-card N         relation cardinality (default 20000)
//	-procs N        processors (default 32)
//	-corr low|high  attribute correlation
//	-strategy s     run only one strategy (magic|berd|range|hash)
//	-quiet          summary only, no event trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/gamma"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		attrName = flag.String("attr", "B", "predicate attribute: A or B")
		lo       = flag.Int64("lo", 1000, "predicate lower bound")
		width    = flag.Int64("width", 10, "predicate width (tuples)")
		card     = flag.Int("card", 20000, "relation cardinality")
		procs    = flag.Int("procs", 32, "processors")
		corr     = flag.String("corr", "low", "attribute correlation: low or high")
		strategy = flag.String("strategy", "", "run a single strategy")
		quiet    = flag.Bool("quiet", false, "suppress the event trace")
	)
	flag.Parse()

	var attr int
	switch *attrName {
	case "A", "a":
		attr = storage.Unique1
	case "B", "b":
		attr = storage.Unique2
	default:
		fatal(fmt.Errorf("unknown attribute %q (want A or B)", *attrName))
	}
	pred := core.Predicate{Attr: attr, Lo: *lo, Hi: *lo + *width - 1}

	window := 0
	if *corr == "high" {
		window = *card / 1000
		if window < 1 {
			window = 1
		}
	}
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: *card, CorrelationWindow: window, Seed: 1,
	})
	mix := workload.LowLow(*card)
	opts := experiments.QuickScale()
	opts.Cardinality = *card
	opts.Processors = *procs

	strategies := []string{experiments.StrategyMAGIC, experiments.StrategyBERD, experiments.StrategyRange}
	if *strategy != "" {
		strategies = []string{*strategy}
	}

	for _, name := range strategies {
		pl, err := experiments.BuildPlacement(name, rel, mix, opts)
		if err != nil {
			fatal(err)
		}
		cfg := gamma.DefaultConfig()
		cfg.HW.NumProcessors = *procs
		machine, err := gamma.Build(rel, pl, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s: %v ===\n", name, pred)
		if !*quiet {
			machine.Eng.SetTrace(func(tm sim.Time, who, what string) {
				fmt.Printf("  %10.3fms  %-12s %s\n", tm.Milliseconds(), who, what)
			})
		}
		var res exec.QueryResult
		machine.Eng.Spawn("probe", func(p *sim.Proc) {
			res = machine.Host.Execute(p, pred, mix.AccessChooser())
			machine.Eng.Stop()
		})
		if err := machine.Eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
			fatal(err)
		}
		fmt.Printf("--> %d tuples in %.3fms using %d processors (%d auxiliary)\n\n",
			res.Tuples, res.ResponseMS(), res.ProcessorsUsed, res.AuxProcessors)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "querytrace:", err)
	os.Exit(1)
}
