// Command magicplan is the design-time planner: given a workload mix, a
// relation size and a machine size, it prints everything MAGIC computes
// before any data moves — the QAve aggregates, M and the fragment
// cardinality FC (Section 3.2), the per-attribute Mi values (Equation 3),
// Equation 4's Fraction_Splits alongside the Mi-proportional split weights
// the construction uses, and (with -build) the constructed directory shape
// and the quality of the processor assignment.
//
// Usage:
//
//	magicplan [flags]
//
//	-mix low-low|low-low-wider|low-moderate|moderate-low|moderate-moderate
//	-card N      relation cardinality (default 100000)
//	-procs N     processors (default 32)
//	-corr low|high
//	-seed N
//	-build       build the directory and report assignment quality
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/hw"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		mixName = flag.String("mix", "low-low", "workload mix")
		card    = flag.Int("card", 100000, "relation cardinality")
		procs   = flag.Int("procs", 32, "processors")
		corr    = flag.String("corr", "low", "attribute correlation: low or high")
		seed    = flag.Int64("seed", 1, "generation seed")
		build   = flag.Bool("build", false, "build the directory and report assignment quality")
	)
	flag.Parse()

	mix, err := mixByName(*mixName, *card)
	if err != nil {
		fatal(err)
	}
	hwp := hw.DefaultParams()
	costs := exec.DefaultCosts()
	specs := workload.EstimateSpecs(mix, *card, hwp, costs)
	pp := workload.PlanParamsFor(*card, *procs, costs)

	plan, err := core.ComputePlan(specs, pp)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Workload %q on %d processors, %d-tuple relation (CP=%.2fms, CS=%.4fms)\n\n",
		mix.Name, *procs, *card, pp.CPms, pp.CSms)

	qt := stats.NewTable("Estimated per-class resource requirements (Section 3.2 inputs)",
		"class", "attr", "tuples", "freq", "CPU ms", "Disk ms", "Net ms")
	for _, s := range specs {
		qt.AddRow(s.Name, storage.AttrName(s.Attr), s.TuplesPerQuery, s.Frequency,
			s.CPUms, s.DiskMS, s.NetMS)
	}
	fmt.Println(qt.String())

	fmt.Printf("QAve: tuples=%.2f CPU=%.2fms Disk=%.2fms Net=%.2fms\n",
		plan.TuplesPerQAve, plan.CPUAveMS, plan.DiskAveMS, plan.NetAveMS)
	fmt.Printf("M  (ideal processors for QAve)   = %.3f (numeric optimum over Eq. 1: %d)\n",
		plan.M, plan.OptimalM(pp))
	fmt.Printf("FC (fragment cardinality)        = %d tuples\n", plan.FC)
	for _, attr := range []int{storage.Unique1, storage.Unique2} {
		if mi, ok := plan.Mi[attr]; ok {
			fmt.Printf("Mi[%s] (Eq. 3)              = %.2f processors\n",
				storage.AttrName(attr), mi)
		}
	}
	for _, attr := range []int{storage.Unique1, storage.Unique2} {
		if fs, ok := plan.FractionSplits[attr]; ok {
			fmt.Printf("Fraction_Splits[%s] (Eq. 4) = %.4f (split weight used: %.4f)\n",
				storage.AttrName(attr), fs, plan.SplitWeights[attr])
		}
	}

	if !*build {
		return
	}
	window := 0
	if *corr == "high" {
		window = *card / 1000
		if window < 1 {
			window = 1
		}
	}
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: *card, CorrelationWindow: window, Seed: *seed,
	})
	magic, err := core.BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, specs, pp, nil)
	if err != nil {
		fatal(err)
	}
	dims := magic.Dims()
	fmt.Printf("\nConstructed directory: %dx%d (%d entries, %d overflow, %d rebalance swaps)\n",
		dims[0], dims[1], magic.Grid().NumCells(), magic.Grid().OverflowCells(),
		magic.RebalanceSwaps())
	min, max, mean := core.LoadSpread(magic.Owners(), magic.CellCounts(), *procs)
	fmt.Printf("Tuple balance: min=%d max=%d mean=%.1f (spread %.1f%%)\n",
		min, max, mean, 100*float64(max-min)/float64(max))
	for d, attr := range magic.Attrs() {
		dist := core.NonEmptySliceDistinct(magic.Owners(), dims, magic.CellCounts(), d)
		var acc stats.Accumulator
		for _, v := range dist {
			acc.Add(float64(v))
		}
		fmt.Printf("Distinct processors per non-empty %s slice: mean %.1f (min %.0f, max %.0f)\n",
			storage.AttrName(attr), acc.Mean(), acc.Min(), acc.Max())
	}

	fmt.Println("\nRouting preview (predicates centred on the domain midpoint):")
	for _, cls := range mix.Classes {
		pred := core.Predicate{Attr: cls.Attr,
			Lo: int64(*card / 2), Hi: int64(*card/2 + cls.Tuples - 1)}
		route := magic.Route(pred)
		fmt.Printf("  %-14s %v -> %d processors (%d directory entries searched)\n",
			cls.Name, pred, len(route.Participants), route.EntriesSearched)
	}
}

func mixByName(name string, card int) (workload.Mix, error) {
	switch name {
	case "low-low":
		return workload.LowLow(card), nil
	case "low-low-wider":
		return workload.LowLowWider(card), nil
	case "low-moderate":
		return workload.LowModerate(card), nil
	case "moderate-low":
		return workload.ModerateLow(card), nil
	case "moderate-moderate":
		return workload.ModerateModerate(card), nil
	default:
		return workload.Mix{}, fmt.Errorf("unknown mix %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "magicplan:", err)
	os.Exit(1)
}
