// Package repro is a from-scratch Go reproduction of "A Performance
// Analysis of Alternative Multi-Attribute Declustering Strategies"
// (Ghandeharizadeh, DeWitt, Qureshi; SIGMOD 1992).
//
// The library lives under internal/: the MAGIC, BERD, range and hash
// declustering strategies (internal/core), the process-oriented
// discrete-event simulation kernel (internal/sim), the Gamma machine model
// (internal/hw, internal/gamma), the storage engine with B+-trees and a
// grid file (internal/storage, internal/btree, internal/gridfile), the
// Section 6 workload (internal/workload), the per-figure experiments
// (internal/experiments) and the parallel campaign orchestrator that runs
// them concurrently with deterministic output (internal/harness). The root
// package holds the benchmark harness (bench_test.go) that regenerates
// every figure of the paper's evaluation; see README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
