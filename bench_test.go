package repro

// The benchmark harness: one benchmark per figure of the paper's evaluation
// section (Section 7) plus the ablation benches DESIGN.md calls out. Each
// figure benchmark runs the full MPL sweep for every strategy and reports
// the measured throughputs as custom metrics (q/s per strategy at the
// highest MPL), so
//
//	go test -bench=Fig -benchmem
//
// regenerates the series of every figure. Set REPRO_SCALE=paper in the
// environment to run at the paper's full scale (100k tuples, MPL 1..64);
// the default is the quick scale used by CI.
//
// cmd/declusterbench prints the same series as readable tables.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/gamma"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

func benchOptions() experiments.Options {
	if os.Getenv("REPRO_SCALE") == "paper" {
		return experiments.PaperScale()
	}
	return experiments.QuickScale()
}

// benchWorkers sizes the harness worker pool for benchmark runs: the
// REPRO_WORKERS environment variable, defaulting to GOMAXPROCS. Results do
// not depend on the worker count — only wall clock does.
func benchWorkers() int {
	if s := os.Getenv("REPRO_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// benchFigure runs one figure per b.N iteration — its (strategy, MPL) jobs
// spread over the harness worker pool — and reports the throughput of each
// strategy at the top multiprogramming level.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	fig, err := experiments.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	copts := experiments.CampaignOptions{Workers: benchWorkers()}
	var last experiments.FigureResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaign, err := experiments.RunCampaign([]experiments.Figure{fig}, opts, copts)
		if err != nil {
			b.Fatal(err)
		}
		last = campaign.Figures[0]
	}
	b.StopTimer()
	top := opts.MPLs[len(opts.MPLs)-1]
	for _, s := range fig.Strategies {
		if qps, ok := last.Throughput(s, top); ok {
			b.ReportMetric(qps, s+"_q/s")
		}
	}
	if b.N > 0 {
		b.Logf("figure %s @ MPL %d:\n%s", id, top, last.Table().String())
	}
}

// Figure benchmarks — one per table/figure of the evaluation section.

func BenchmarkFig8LowLowLowCorr(b *testing.B)            { benchFigure(b, "8a") }
func BenchmarkFig8LowLowHighCorr(b *testing.B)           { benchFigure(b, "8b") }
func BenchmarkFig9HigherSelectivity(b *testing.B)        { benchFigure(b, "9") }
func BenchmarkFig10LowModerateLowCorr(b *testing.B)      { benchFigure(b, "10a") }
func BenchmarkFig10LowModerateHighCorr(b *testing.B)     { benchFigure(b, "10b") }
func BenchmarkFig11ModerateLowLowCorr(b *testing.B)      { benchFigure(b, "11a") }
func BenchmarkFig11ModerateLowHighCorr(b *testing.B)     { benchFigure(b, "11b") }
func BenchmarkFig12ModerateModerateLowCorr(b *testing.B) { benchFigure(b, "12a") }
func BenchmarkFig12ModerateModerateHighCorr(b *testing.B) {
	benchFigure(b, "12b")
}

// Ablation benches (design choices called out in DESIGN.md).

// BenchmarkAblationBufferPool sweeps the per-node buffer pool size on the
// low-low mix: the crossover from disk-bound to memory-resident shows why
// the default pins index pages but not data.
func BenchmarkAblationBufferPool(b *testing.B) {
	opts := benchOptions()
	opts.MPLs = []int{32}
	fig, _ := experiments.FigureByID("8a")
	fig.Strategies = []string{experiments.StrategyMAGIC}
	for _, pages := range []int{0, 8, 24, 256} {
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			cfg := experiments.ConfigFor(opts)
			cfg.BufferPages = pages
			o := opts
			o.Config = &cfg
			var qps float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(fig, o)
				if err != nil {
					b.Fatal(err)
				}
				qps, _ = res.Throughput(experiments.StrategyMAGIC, 32)
			}
			b.ReportMetric(qps, "q/s")
		})
	}
}

// BenchmarkAblationBERDFetchMode compares BERD's second step executed as a
// predicate re-execution (the paper's protocol) against per-TID fetches.
func BenchmarkAblationBERDFetchMode(b *testing.B) {
	opts := benchOptions()
	opts.MPLs = []int{32}
	fig, _ := experiments.FigureByID("10a")
	fig.Strategies = []string{experiments.StrategyBERD}
	for _, byTID := range []bool{false, true} {
		name := "predicate"
		if byTID {
			name = "tid-fetch"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.ConfigFor(opts)
			cfg.BERDFetchByTID = byTID
			o := opts
			o.Config = &cfg
			var qps float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(fig, o)
				if err != nil {
					b.Fatal(err)
				}
				qps, _ = res.Throughput(experiments.StrategyBERD, 32)
			}
			b.ReportMetric(qps, "q/s")
		})
	}
}

// BenchmarkAblationAssignment compares MAGIC's Mi-aware tiled assignment
// (with and without rebalancing) against naive round-robin cell assignment
// on the high-correlation low-low mix, where assignment quality matters
// most.
func BenchmarkAblationAssignment(b *testing.B) {
	opts := benchOptions()
	opts.MPLs = []int{32}
	cfg := experiments.ConfigFor(opts)
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality:       opts.Cardinality,
		CorrelationWindow: opts.Cardinality / 1000,
		Seed:              opts.Seed,
	})
	mix := workload.LowLow(opts.Cardinality)
	specs := workload.EstimateSpecs(mix, opts.Cardinality, cfg.HW, cfg.Costs)
	pp := workload.PlanParamsFor(opts.Cardinality, opts.Processors, cfg.Costs)

	variants := []struct {
		name string
		opts *core.MagicOptions
	}{
		{"tiled+rebalance", nil},
		{"tiled-only", &core.MagicOptions{DisableRebalance: true}},
		{"round-robin", &core.MagicOptions{RoundRobinAssign: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			pl, err := core.BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, specs, pp, v.opts)
			if err != nil {
				b.Fatal(err)
			}
			machine, err := gamma.Build(rel, pl, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var qps float64
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(mix, gamma.RunSpec{
					MPL:            32,
					WarmupQueries:  opts.WarmupQueries,
					MeasureQueries: opts.MeasureQueries,
					Seed:           opts.Seed,
				})
				if err != nil {
					b.Fatal(err)
				}
				qps = res.ThroughputQPS
			}
			b.ReportMetric(qps, "q/s")
		})
	}
}

// BenchmarkAblationHash adds hash declustering (the introduction's other
// single-attribute baseline) to the low-low comparison: exact-match queries
// on A localize to one node, but every range query fans out to all of them.
func BenchmarkAblationHash(b *testing.B) {
	opts := benchOptions()
	opts.MPLs = []int{32}
	fig, _ := experiments.FigureByID("8a")
	fig.Strategies = []string{experiments.StrategyHash, experiments.StrategyRange}
	var last experiments.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.Run(fig, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Strategies {
		if qps, ok := last.Throughput(s, 32); ok {
			b.ReportMetric(qps, s+"_q/s")
		}
	}
}

// BenchmarkPlanSensitivity sweeps the Cost of Participation and reports the
// planner's M — the knob Section 3.2's formula balances against parallelism.
// This is pure planning arithmetic: no simulation.
func BenchmarkPlanSensitivity(b *testing.B) {
	opts := benchOptions()
	cfg := experiments.ConfigFor(opts)
	mix := workload.LowModerate(opts.Cardinality)
	specs := workload.EstimateSpecs(mix, opts.Cardinality, cfg.HW, cfg.Costs)
	for _, cp := range []float64{0.5, 1.7, 5.0} {
		b.Run(fmt.Sprintf("CP=%.1fms", cp), func(b *testing.B) {
			pp := workload.PlanParamsFor(opts.Cardinality, opts.Processors, cfg.Costs)
			pp.CPms = cp
			var m float64
			for i := 0; i < b.N; i++ {
				plan, err := core.ComputePlan(specs, pp)
				if err != nil {
					b.Fatal(err)
				}
				m = plan.M
			}
			b.ReportMetric(m, "M")
		})
	}
}

// BenchmarkCampaign runs every figure of the evaluation section as one
// concurrent campaign and reports the harness's measured speedup versus
// back-to-back job execution — the wall-clock win of regenerating the whole
// evaluation on a multi-core host.
func BenchmarkCampaign(b *testing.B) {
	opts := benchOptions()
	copts := experiments.CampaignOptions{Workers: benchWorkers()}
	var speedup float64
	for i := 0; i < b.N; i++ {
		campaign, err := experiments.RunCampaign(experiments.Figures(), opts, copts)
		if err != nil {
			b.Fatal(err)
		}
		speedup = campaign.Manifest.Speedup
	}
	b.ReportMetric(float64(benchWorkers()), "workers")
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkScaleOut sweeps the machine size at constant per-processor load
// (MPL = 2P) and reports each strategy's throughput at the largest size.
func BenchmarkScaleOut(b *testing.B) {
	opts := benchOptions()
	sweep := experiments.DefaultScaleSweep()
	copts := experiments.CampaignOptions{Workers: benchWorkers()}
	var last experiments.ScaleResult
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunScaleSweepParallel(sweep, opts, copts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	top := sweep.Processors[len(sweep.Processors)-1]
	for _, s := range sweep.Strategies {
		if qps, ok := last.Throughput(s, top); ok {
			b.ReportMetric(qps, s+"_q/s")
		}
	}
	b.Logf("scale-out:\n%s", last.Table().String())
}

// BenchmarkAblationAccessSkew aims 80% of the queries at the first 10% of
// the attribute domain (the hot-spot pattern [GD90] warns about) and
// reports each strategy's throughput at MPL 32 beside the uniform numbers.
func BenchmarkAblationAccessSkew(b *testing.B) {
	opts := benchOptions()
	opts.MPLs = []int{32}
	cfg := experiments.ConfigFor(opts)
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: opts.Cardinality, Seed: opts.Seed,
	})
	for _, hot := range []bool{false, true} {
		name := "uniform"
		mix := workload.LowLow(opts.Cardinality)
		if hot {
			name = "hot80-10"
			mix = mix.WithHotSpot(0.8, 0.1)
		}
		b.Run(name, func(b *testing.B) {
			for _, strat := range []string{experiments.StrategyMAGIC, experiments.StrategyRange} {
				pl, err := experiments.BuildPlacement(strat, rel, mix, opts)
				if err != nil {
					b.Fatal(err)
				}
				machine, err := gamma.Build(rel, pl, cfg)
				if err != nil {
					b.Fatal(err)
				}
				var qps float64
				for i := 0; i < b.N; i++ {
					res, err := machine.Run(mix, gamma.RunSpec{
						MPL:            32,
						WarmupQueries:  opts.WarmupQueries,
						MeasureQueries: opts.MeasureQueries,
						Seed:           opts.Seed,
					})
					if err != nil {
						b.Fatal(err)
					}
					qps = res.ThroughputQPS
				}
				b.ReportMetric(qps, strat+"_q/s")
			}
		})
	}
}

// BenchmarkOpenSystem sweeps the offered load on the low-low mix and
// reports mean response time per strategy — the open-system extension of
// the closed MPL experiments.
func BenchmarkOpenSystem(b *testing.B) {
	opts := benchOptions()
	cfg := experiments.ConfigFor(opts)
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: opts.Cardinality, Seed: opts.Seed,
	})
	mix := workload.LowLow(opts.Cardinality)
	for _, rate := range []float64{50, 200} {
		b.Run(fmt.Sprintf("rate=%.0fqps", rate), func(b *testing.B) {
			for _, strat := range []string{experiments.StrategyMAGIC, experiments.StrategyRange} {
				pl, err := experiments.BuildPlacement(strat, rel, mix, opts)
				if err != nil {
					b.Fatal(err)
				}
				machine, err := gamma.Build(rel, pl, cfg)
				if err != nil {
					b.Fatal(err)
				}
				var resp float64
				for i := 0; i < b.N; i++ {
					res, err := machine.RunOpen(mix, gamma.OpenRunSpec{
						ArrivalRateQPS: rate,
						WarmupQueries:  opts.WarmupQueries / 2,
						MeasureQueries: opts.MeasureQueries,
						Seed:           opts.Seed,
					})
					if err != nil {
						b.Fatal(err)
					}
					resp = res.MeanResponseMS
				}
				b.ReportMetric(resp, strat+"_resp_ms")
			}
		})
	}
}

// BenchmarkDeclusteringLoad measures the cost of the partitioning process
// itself (Section 3.1): range scans the source once; BERD and MAGIC need a
// second pass and write more pages.
func BenchmarkDeclusteringLoad(b *testing.B) {
	opts := benchOptions()
	cfg := experiments.ConfigFor(opts)
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: opts.Cardinality, Seed: opts.Seed,
	})
	mix := workload.LowLow(opts.Cardinality)
	for _, strat := range []string{experiments.StrategyRange, experiments.StrategyBERD, experiments.StrategyMAGIC} {
		b.Run(strat, func(b *testing.B) {
			pl, err := experiments.BuildPlacement(strat, rel, mix, opts)
			if err != nil {
				b.Fatal(err)
			}
			machine, err := gamma.Build(rel, pl, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var loadS float64
			for i := 0; i < b.N; i++ {
				res, err := machine.SimulateLoad()
				if err != nil {
					b.Fatal(err)
				}
				loadS = res.Elapsed.Seconds()
			}
			b.ReportMetric(loadS, "load_s")
		})
	}
}

// BenchmarkEquation1Validation measures the response-time-versus-
// declustering-width curve for the moderate non-clustered query and
// reports the measured and modeled optima — the empirical check of the
// paper's Equation 1.
func BenchmarkEquation1Validation(b *testing.B) {
	opts := benchOptions()
	opts.Cardinality = 100000 // full-size fragments keep the disks honest
	cls := workload.ModerateLow(opts.Cardinality).Classes[0]
	var rc experiments.ResponseCurve
	var err error
	for i := 0; i < b.N; i++ {
		rc, err = experiments.RunResponseCurve(cls, []int{1, 2, 4, 8, 16, 32, 64}, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rc.MeasuredM), "measured_M")
	b.ReportMetric(float64(rc.ModeledM), "modeled_M")
	b.Logf("equation 1 validation:\n%s", rc.Table().String())
}

// BenchmarkJoinColocation measures the parallel hash join with both inputs
// hash-declustered on the join key (co-located: split tables degenerate to
// the identity) versus range-declustered inputs that must fully repartition.
func BenchmarkJoinColocation(b *testing.B) {
	opts := benchOptions()
	cfg := experiments.ConfigFor(opts)
	stock := storage.GenerateWisconsin(storage.GenSpec{
		Name: "stock", Cardinality: opts.Cardinality, Seed: 21,
	})
	trades := storage.GenerateWisconsin(storage.GenSpec{
		Name: "trades", Cardinality: opts.Cardinality / 4, Seed: 22,
	})
	spec := exec.JoinSpec{
		BuildRelation: "trades", BuildAttr: storage.Unique1,
		ProbeRelation: "stock", ProbeAttr: storage.Unique1,
	}
	variants := []struct {
		name              string
		stockPl, tradesPl func() core.Placement
	}{
		{"co-located",
			func() core.Placement { return core.NewHash(storage.Unique1, opts.Processors) },
			func() core.Placement { return core.NewHash(storage.Unique1, opts.Processors) }},
		{"repartitioned",
			func() core.Placement { return core.NewRangeForRelation(stock, storage.Unique2, opts.Processors) },
			func() core.Placement { return core.NewRangeForRelation(trades, storage.Unique2, opts.Processors) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			machine, err := gamma.Build(stock, v.stockPl(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := machine.AddRelation(trades, v.tradesPl()); err != nil {
				b.Fatal(err)
			}
			var ms float64
			for i := 0; i < b.N; i++ {
				var res exec.JoinResult
				machine.Eng.Spawn("joiner", func(p *sim.Proc) {
					res = machine.Host.ExecuteJoin(p, spec)
					machine.Eng.Stop()
				})
				if err := machine.Eng.RunUntil(sim.Time(30 * 60 * sim.Second)); err != nil {
					b.Fatal(err)
				}
				if res.Matches != trades.Cardinality() {
					b.Fatalf("matches = %d", res.Matches)
				}
				ms = res.ResponseMS()
				machine.Reset() // fresh engine for the next iteration
			}
			b.ReportMetric(ms, "join_ms")
		})
	}
}
