// Correlated reproduces the Section 4 scenario of the paper: an
// Emp(ss#, name, age, salary, dept_no) relation whose partitioning
// attributes — age and salary — are highly correlated ("the salary of an
// employee increases proportionally to his/her age"). It shows the three
// effects the paper describes:
//
//  1. BERD localizes secondary-attribute queries to a single processor
//     when the attributes are correlated, versus ~11 processors when they
//     are not;
//  2. MAGIC's grid directory ends up with empty off-diagonal entries, so
//     the optimizer directs queries to far fewer processors than the
//     assignment anticipated; and
//  3. without the rebalancing heuristic the diagonal concentrates tuples
//     on a few processors, while the hill climber brings the spread down
//     to the ~20% the paper reports for the worst case.
//
// Run with:
//
//	go run ./examples/correlated
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gamma"
	"repro/internal/storage"
	"repro/internal/workload"
)

const (
	card       = 20000
	processors = 32
	ageAttr    = storage.Unique2 // age: the clustered storage order
	salaryAttr = storage.Unique1 // salary: correlated with age
)

func main() {
	// Emp with salary ~ age: the generator's correlation window bounds how
	// far a salary rank may stray from the age rank.
	emp := storage.GenerateWisconsin(storage.GenSpec{
		Name: "Emp", Cardinality: card, CorrelationWindow: 50, Seed: 3,
	})
	uncorrelated := storage.GenerateWisconsin(storage.GenSpec{
		Name: "EmpShuffled", Cardinality: card, CorrelationWindow: 0, Seed: 3,
	})

	fmt.Println("== BERD: processors holding the tuples of a 10-value age range ==")
	for _, rel := range []*storage.Relation{uncorrelated, emp} {
		berd := core.NewBERDForRelation(rel, salaryAttr, []int{ageAttr}, processors)
		homes := map[int]bool{}
		for _, t := range rel.Tuples {
			if v := t.Attrs[ageAttr]; v >= 10000 && v < 10010 {
				homes[berd.HomeOf(t)] = true
			}
		}
		fmt.Printf("  %-12s -> %d distinct processors (plus 1 auxiliary fragment)\n",
			rel.Name, len(homes))
	}

	fmt.Println("\n== MAGIC: directory occupancy and routing under correlation ==")
	mix := workload.LowLow(card)
	cfg := gamma.DefaultConfig()
	specs := workload.EstimateSpecs(mix, card, cfg.HW, cfg.Costs)
	pp := workload.PlanParamsFor(card, processors, cfg.Costs)
	for _, rel := range []*storage.Relation{uncorrelated, emp} {
		magic, err := core.BuildMAGIC(rel, []int{salaryAttr, ageAttr}, specs, pp, nil)
		if err != nil {
			log.Fatal(err)
		}
		empty := 0
		for flat := 0; flat < magic.Grid().NumCells(); flat++ {
			if magic.Grid().CellCount(flat) == 0 {
				empty++
			}
		}
		qAge := magic.Route(core.Predicate{Attr: ageAttr, Lo: 10000, Hi: 10009})
		qSal := magic.Route(core.Predicate{Attr: salaryAttr, Lo: 10000, Hi: 10000})
		fmt.Printf("  %-12s %5.1f%% empty cells; age-range query -> %d procs, "+
			"salary lookup -> %d procs\n",
			rel.Name, 100*float64(empty)/float64(magic.Grid().NumCells()),
			len(qAge.Participants), len(qSal.Participants))
	}

	fmt.Println("\n== Rebalancing the worst case (identical attribute values) ==")
	identical := storage.GenerateWisconsin(storage.GenSpec{
		Name: "EmpIdentical", Cardinality: card, CorrelationWindow: 1, Seed: 3,
	})
	for _, disable := range []bool{true, false} {
		magic, err := core.BuildMAGIC(identical, []int{salaryAttr, ageAttr}, specs, pp,
			&core.MagicOptions{DisableRebalance: disable})
		if err != nil {
			log.Fatal(err)
		}
		min, max, mean := core.LoadSpread(magic.Owners(), magic.CellCounts(), processors)
		label := "with rebalancing   "
		if disable {
			label = "without rebalancing"
		}
		fmt.Printf("  %s: min=%d max=%d mean=%.0f tuples/processor (spread %.0f%%, %d swaps)\n",
			label, min, max, mean, 100*float64(max-min)/float64(max), magic.RebalanceSwaps())
	}

	fmt.Println("\n== Throughput, age-range + salary-lookup mix at MPL 32 ==")
	for _, rel := range []*storage.Relation{uncorrelated, emp} {
		for _, build := range []func() (core.Placement, error){
			func() (core.Placement, error) {
				return core.BuildMAGIC(rel, []int{salaryAttr, ageAttr}, specs, pp, nil)
			},
			func() (core.Placement, error) {
				return core.NewBERDForRelation(rel, salaryAttr, []int{ageAttr}, processors), nil
			},
		} {
			pl, err := build()
			if err != nil {
				log.Fatal(err)
			}
			machine, err := gamma.Build(rel, pl, cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := machine.Run(mix, gamma.RunSpec{
				MPL: 32, WarmupQueries: 100, MeasureQueries: 400,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s %-6s %7.1f queries/s (%.2f processors/query)\n",
				rel.Name, pl.Name(), res.ThroughputQPS, res.MeanProcsUsed)
		}
	}
}
