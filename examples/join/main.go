// Join demonstrates the Gamma substrate's parallel hash join and how the
// declustering decision determines its cost: joining TRADES with STOCK on
// the ticker key is network-free when both relations are hash-declustered
// on that key (co-located), while declustering either relation on any other
// attribute forces a full repartitioning of both inputs through the split
// tables. Declustering for selections (what the paper optimizes) and
// declustering for joins pull in different directions — this example makes
// the tension concrete.
//
// Run with:
//
//	go run ./examples/join
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gamma"
	"repro/internal/sim"
	"repro/internal/storage"
)

const processors = 16

func main() {
	stock := storage.GenerateWisconsin(storage.GenSpec{
		Name: "stock", Cardinality: 8000, Seed: 21,
	})
	trades := storage.GenerateWisconsin(storage.GenSpec{
		Name: "trades", Cardinality: 3200, Seed: 22,
	})
	spec := exec.JoinSpec{
		BuildRelation: "trades", BuildAttr: storage.Unique1, // ticker key
		ProbeRelation: "stock", ProbeAttr: storage.Unique1,
	}

	type setup struct {
		label    string
		stockPl  core.Placement
		tradesPl core.Placement
	}
	setups := []setup{
		{
			label:    "both hash-declustered on ticker (co-located)",
			stockPl:  core.NewHash(storage.Unique1, processors),
			tradesPl: core.NewHash(storage.Unique1, processors),
		},
		{
			label:    "stock range-declustered on price (repartitioned)",
			stockPl:  core.NewRangeForRelation(stock, storage.Unique2, processors),
			tradesPl: core.NewHash(storage.Unique1, processors),
		},
		{
			label:    "both range-declustered on price (repartitioned)",
			stockPl:  core.NewRangeForRelation(stock, storage.Unique2, processors),
			tradesPl: core.NewRangeForRelation(trades, storage.Unique2, processors),
		},
	}

	fmt.Printf("join trades (%d tuples) with stock (%d tuples) on the ticker key, %d processors:\n\n",
		trades.Cardinality(), stock.Cardinality(), processors)
	for _, su := range setups {
		machine, err := gamma.Build(stock, su.stockPl, gamma.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if err := machine.AddRelation(trades, su.tradesPl); err != nil {
			log.Fatal(err)
		}
		var res exec.JoinResult
		var packets int64
		machine.Eng.Spawn("joiner", func(p *sim.Proc) {
			before := sent(machine)
			res = machine.Host.ExecuteJoin(p, spec)
			packets = sent(machine) - before
			machine.Eng.Stop()
		})
		if err := machine.Eng.RunUntil(sim.Time(30 * 60 * sim.Second)); err != nil {
			log.Fatal(err)
		}
		mode := "co-located"
		if res.Repartitioned {
			mode = "repartitioned"
		}
		fmt.Printf("  %-48s %6d matches in %8.1fms (%s, %d operator packets)\n",
			su.label, res.Matches, res.ResponseMS(), mode, packets)
	}
}

// sent sums packets transmitted by the operator nodes (excluding the host).
func sent(m *gamma.Machine) int64 {
	var t int64
	for i := range m.Nodes {
		t += m.Net.Sent(i)
	}
	return t
}
