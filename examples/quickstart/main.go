// Quickstart: decluster a relation three ways — MAGIC, BERD, and range —
// route the two query types of the paper's workload, and measure throughput
// on the simulated 32-processor Gamma machine.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gamma"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	// 1. A 20,000-tuple Wisconsin relation with uncorrelated unique1 (A)
	//    and unique2 (B) attributes.
	const card = 20000
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: card, Seed: 42})
	fmt.Printf("relation %q: %d tuples, %d attributes\n\n",
		rel.Name, rel.Cardinality(), storage.NumAttrs)

	// 2. The paper's low-low workload: 50% single-tuple lookups on A (via a
	//    non-clustered index), 50% ten-tuple ranges on B (clustered index).
	mix := workload.LowLow(card)
	cfg := gamma.DefaultConfig()

	// 3. Build the three placements. MAGIC needs the workload's estimated
	//    resource requirements to size fragments (Section 3.2 of the paper).
	specs := workload.EstimateSpecs(mix, card, cfg.HW, cfg.Costs)
	pp := workload.PlanParamsFor(card, cfg.HW.NumProcessors, cfg.Costs)
	magic, err := core.BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, specs, pp, nil)
	if err != nil {
		log.Fatal(err)
	}
	berd := core.NewBERDForRelation(rel, storage.Unique1, []int{storage.Unique2}, pp.Processors)
	rng := core.NewRangeForRelation(rel, storage.Unique1, pp.Processors)

	dims := magic.Dims()
	fmt.Printf("MAGIC built a %dx%d grid directory (%d fragments of <=%d tuples)\n\n",
		dims[0], dims[1], magic.Grid().NumCells(), magic.Plan().FC)

	// 4. Routing: ask each strategy where two predicates must execute.
	for _, pred := range []core.Predicate{
		{Attr: storage.Unique1, Lo: 10000, Hi: 10000}, // exact match on A
		{Attr: storage.Unique2, Lo: 5000, Hi: 5009},   // 10-tuple range on B
	} {
		fmt.Printf("%v:\n", pred)
		for _, pl := range []core.Placement{magic, berd, rng} {
			route := pl.Route(pred)
			switch {
			case len(route.Aux) > 0:
				fmt.Printf("  %-6s -> consult %d auxiliary fragment(s), then the owning processors\n",
					pl.Name(), len(route.Aux))
			default:
				fmt.Printf("  %-6s -> %d processor(s)\n", pl.Name(), len(route.Participants))
			}
		}
		fmt.Println()
	}

	// 5. Simulate a closed workload at multiprogramming level 16 and
	//    compare throughput.
	fmt.Println("simulated throughput at MPL 16 (low-low mix):")
	for _, pl := range []core.Placement{magic, berd, rng} {
		machine, err := gamma.Build(rel, pl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := machine.Run(mix, gamma.RunSpec{
			MPL: 16, WarmupQueries: 100, MeasureQueries: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %7.1f queries/s  (%.1f ms mean response, %.2f processors/query)\n",
			pl.Name(), res.ThroughputQPS, res.MeanResponseMS, res.MeanProcsUsed)
	}
}
