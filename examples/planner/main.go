// Planner is a what-if exploration of MAGIC's design-time model (Sections
// 3.2–3.3): it shows how the ideal degree of parallelism M, the fragment
// cardinality FC, the per-attribute Mi values and the resulting directory
// shape respond to the workload mix and to the Cost of Participation — the
// trade-off Equation 1 captures between spreading work and paying
// per-processor overhead.
//
// Run with:
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gamma"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

const (
	card       = 100000
	processors = 32
)

func main() {
	cfg := gamma.DefaultConfig()

	// 1. The four mixes of the paper: how the plan changes with the
	//    workload's resource intensity.
	fmt.Println("== Plans across the paper's four query mixes ==")
	tb := stats.NewTable("", "mix", "QAve tuples", "M", "FC", "Mi[A]", "Mi[B]", "split A:B")
	mixes := []workload.Mix{
		workload.LowLow(card),
		workload.LowModerate(card),
		workload.ModerateLow(card),
		workload.ModerateModerate(card),
	}
	for _, mix := range mixes {
		plan := mustPlan(mix, cfg, 1.7)
		tb.AddRow(mix.Name,
			fmt.Sprintf("%.1f", plan.TuplesPerQAve),
			fmt.Sprintf("%.2f", plan.M),
			plan.FC,
			fmt.Sprintf("%.1f", plan.Mi[storage.Unique1]),
			fmt.Sprintf("%.1f", plan.Mi[storage.Unique2]),
			fmt.Sprintf("%.1f", plan.SplitWeights[storage.Unique1]/plan.SplitWeights[storage.Unique2]))
	}
	fmt.Println(tb.String())

	// 2. Sensitivity to the Cost of Participation: a cheap scheduling
	//    protocol favours wide parallelism; an expensive one localizes.
	fmt.Println("== M and Mi versus the Cost of Participation (low-moderate mix) ==")
	mix := workload.LowModerate(card)
	cp := stats.NewTable("", "CP (ms)", "M", "modeled RT at M (ms)", "Mi[A]", "Mi[B]")
	for _, cpms := range []float64{0.25, 0.5, 1.0, 1.7, 3.0, 6.0} {
		plan := mustPlan(mix, cfg, cpms)
		pp := workload.PlanParamsFor(card, processors, cfg.Costs)
		pp.CPms = cpms
		rt := core.ResponseTime(plan.M, plan.TuplesPerQAve,
			plan.CPUAveMS, plan.DiskAveMS, plan.NetAveMS, pp)
		cp.AddRow(cpms,
			fmt.Sprintf("%.2f", plan.M),
			fmt.Sprintf("%.1f", rt),
			fmt.Sprintf("%.1f", plan.Mi[storage.Unique1]),
			fmt.Sprintf("%.1f", plan.Mi[storage.Unique2]))
	}
	fmt.Println(cp.String())

	// 3. What the constructed directory actually looks like for one plan.
	fmt.Println("== Constructed directory for the moderate-moderate mix ==")
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: card, Seed: 1})
	mm := workload.ModerateModerate(card)
	specs := workload.EstimateSpecs(mm, card, cfg.HW, cfg.Costs)
	pp := workload.PlanParamsFor(card, processors, cfg.Costs)
	magic, err := core.BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, specs, pp, nil)
	if err != nil {
		log.Fatal(err)
	}
	dims := magic.Dims()
	min, max, mean := core.LoadSpread(magic.Owners(), magic.CellCounts(), processors)
	fmt.Printf("directory %dx%d (%d entries), tuples/processor min=%d max=%d mean=%.0f\n",
		dims[0], dims[1], magic.Grid().NumCells(), min, max, mean)
	for _, cls := range mm.Classes {
		pred := core.Predicate{Attr: cls.Attr, Lo: card / 2, Hi: card/2 + int64(cls.Tuples) - 1}
		route := magic.Route(pred)
		fmt.Printf("%-12s -> %2d processors (%d directory entries searched)\n",
			cls.Name, len(route.Participants), route.EntriesSearched)
	}

	// 4. The conjunctive extension: predicates on both partitioning
	//    attributes intersect to a handful of cells.
	both := magic.RouteConjunct([]core.Predicate{
		{Attr: storage.Unique1, Lo: 40000, Hi: 45000},
		{Attr: storage.Unique2, Lo: 60000, Hi: 61000},
	})
	fmt.Printf("conjunction on A and B -> %d processors (%d entries searched)\n",
		len(both.Participants), both.EntriesSearched)
}

func mustPlan(mix workload.Mix, cfg gamma.Config, cpms float64) core.Plan {
	specs := workload.EstimateSpecs(mix, card, cfg.HW, cfg.Costs)
	pp := workload.PlanParamsFor(card, processors, cfg.Costs)
	pp.CPms = cpms
	plan, err := core.ComputePlan(specs, pp)
	if err != nil {
		log.Fatal(err)
	}
	return plan
}
