// Stockmarket reproduces the STOCK relation example of Section 3 of the
// paper: a two-dimensional grid directory over (ticker_symbol, price) on a
// 36-processor machine, where exact-match queries on the ticker symbol
// (query type A) and range queries on the price (query type B) each execute
// on six processors, while one-dimensional range partitioning averages 18.5.
//
// The example drives the library's lower-level pieces directly — the grid
// file, the Mi-aware processor assignment, and the placements — to show how
// MAGIC's execution paradigm arises.
//
// Run with:
//
//	go run ./examples/stockmarket
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gridfile"
	"repro/internal/rng"
	"repro/internal/storage"
)

const (
	processors = 36
	numStocks  = 3600
	// Attribute roles: the STOCK relation of the paper maps onto the
	// storage layer's integer attributes.
	tickerAttr = storage.Unique1 // ticker_symbol, encoded 0..numStocks-1
	priceAttr  = storage.Unique2 // price, 0..numStocks-1 (uncorrelated)
)

func main() {
	// STOCK(ticker_symbol, name, price, closing, opening, P/E): ticker is
	// unique; prices are uncorrelated with ticker order.
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Name: "STOCK", Cardinality: numStocks, Seed: 7,
	})

	// Build the Figure 4 directory by hand: 100-tuple fragments, equal
	// splitting frequencies, and a 36-entry directory cap give the 6x6
	// grid of the paper on 3600 stocks (one fragment per processor).
	grid := gridfile.New(100, []float64{1, 1},
		[][2]int64{{0, numStocks - 1}, {0, numStocks - 1}})
	grid.SetMaxCells(processors)
	for i, t := range rel.Tuples {
		grid.Insert([]int64{t.Attrs[tickerAttr], t.Attrs[priceAttr]}, i)
	}
	dims := grid.Dims()
	fmt.Printf("grid directory on STOCK: %dx%d = %d fragments for %d processors\n",
		dims[0], dims[1], grid.NumCells(), processors)

	// Both query types should run on ~sqrt(36) = 6 processors: assign with
	// Mi = 6 for each dimension.
	owners := core.AssignOwners(dims, processors, []float64{6, 6})
	for d, attr := range []int{tickerAttr, priceAttr} {
		dist := core.SliceDistinct(owners, dims, d)
		fmt.Printf("distinct processors per %s slice: %d\n",
			map[int]string{tickerAttr: "ticker_symbol", priceAttr: "price"}[attr], dist[0])
	}

	// Query type A: select STOCK.all where ticker_symbol = "AXP".
	axp := rel.Tuples[1234].Attrs[tickerAttr]
	colCells := grid.CellsCovering([][2]int64{{axp, axp}, {0, numStocks - 1}})
	fmt.Printf("\nquery A (ticker_symbol = %d) maps to one column: %d cells, %d processors\n",
		axp, len(colCells), distinctOwners(owners, colCells))

	// Query type B: select STOCK.all where 10 < price <= 20 (a band of the
	// price domain).
	rowCells := grid.CellsCovering([][2]int64{{0, numStocks - 1}, {600, 640}})
	fmt.Printf("query B (price range) maps to one row band: %d cells, %d processors\n",
		len(rowCells), distinctOwners(owners, rowCells))

	// Compare with one-dimensional range partitioning on price: query B
	// localizes to one processor but query A must visit all 36, for an
	// average of 18.5 with a 50/50 mix — the arithmetic of Section 3.
	priceRange := core.NewRangeForRelation(rel, priceAttr, processors)
	qa := priceRange.Route(core.Predicate{Attr: tickerAttr, Lo: axp, Hi: axp})
	qb := priceRange.Route(core.Predicate{Attr: priceAttr, Lo: 600, Hi: 640})
	avg := float64(len(qa.Participants)+len(qb.Participants)) / 2
	fmt.Printf("\nrange partitioning on price: query A -> %d processors, "+
		"query B -> %d, average %.1f (paper: 18.5)\n",
		len(qa.Participants), len(qb.Participants), avg)

	// Sanity: the grid answers queries correctly. Count the stocks a
	// random price band selects through the directory versus a scan.
	src := rng.NewSource("probe", 3)
	for trial := 0; trial < 3; trial++ {
		lo := int64(src.Intn(numStocks - 50))
		hi := lo + 40
		cells := grid.CellsCovering([][2]int64{{0, numStocks - 1}, {lo, hi}})
		got := 0
		for _, c := range cells {
			for _, id := range grid.Cell(c) {
				if v := rel.Tuples[id].Attrs[priceAttr]; v >= lo && v <= hi {
					got++
				}
			}
		}
		want := 0
		for _, t := range rel.Tuples {
			if v := t.Attrs[priceAttr]; v >= lo && v <= hi {
				want++
			}
		}
		if got != want {
			log.Fatalf("directory lost tuples: %d vs %d", got, want)
		}
		fmt.Printf("price band [%d,%d]: %d stocks via the directory (verified)\n", lo, hi, got)
	}
}

func distinctOwners(owners []int, cells []int) int {
	seen := map[int]bool{}
	for _, c := range cells {
		seen[owners[c]] = true
	}
	return len(seen)
}
