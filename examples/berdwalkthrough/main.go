// Berdwalkthrough replays the worked example of Section 2 of the paper
// (Figures 1–3): relation R with two attributes A and B and a cardinality
// of six tuples is range declustered on the primary attribute A over three
// processors, an auxiliary relation IndexB is formed from attribute B's
// values with the home processor of each original tuple, and IndexB is
// itself range partitioned on B. The two queries of the running example —
// "retrieve R.all where R.A < 50" and "retrieve R.all where R.B < 50" —
// are then routed exactly as the paper describes.
//
// Run with:
//
//	go run ./examples/berdwalkthrough
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/storage"
)

func main() {
	// Figure 1's relation R: six tuples over attributes A and B.
	rows := []struct{ a, b int64 }{
		{1, 103}, {50, 10}, // processor 1: A in 0-99
		{105, 250}, {113, 15}, // processor 2: A in 100-199
		{250, 212}, {270, 156}, // processor 3: A in 200-299
	}
	tuples := make([]storage.Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = storage.Tuple{TID: int64(i)}
		tuples[i].Attrs[storage.Unique1] = r.a // A
		tuples[i].Attrs[storage.Unique2] = r.b // B
	}
	rel := &storage.Relation{Name: "R", Tuples: tuples}

	// Range partition on A with the paper's boundaries 100 and 200, and
	// the auxiliary relation on B with boundaries matching Figure 3
	// (IndexB entries 10,15 -> processor 1; 103,156 -> 2; 212,250 -> 3).
	berd := core.NewBERD(
		storage.Unique1, []int64{100, 200},
		map[int][]int64{storage.Unique2: {100, 200}},
		3,
	)

	fmt.Println("Figure 1 — range partition R on attribute A:")
	byProc := map[int][]storage.Tuple{}
	for _, t := range rel.Tuples {
		p := berd.HomeOf(t)
		byProc[p] = append(byProc[p], t)
	}
	for p := 0; p < 3; p++ {
		fmt.Printf("  processor %d:", p+1)
		for _, t := range byProc[p] {
			fmt.Printf("  (A=%d, B=%d)", t.Attrs[storage.Unique1], t.Attrs[storage.Unique2])
		}
		fmt.Println()
	}

	fmt.Println("\nFigure 2 — auxiliary relation IndexB (B value -> home processor):")
	aux := berd.AuxAssignments(rel)[storage.Unique2]
	var entries []storage.AuxEntry
	for _, es := range aux {
		entries = append(entries, es...)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].TID < entries[j].TID })
	for _, e := range entries {
		fmt.Printf("  B=%-4d -> processor %d\n", e.Value, e.Proc+1)
	}

	fmt.Println("\nFigure 3 — IndexB range partitioned on attribute B:")
	for p := 0; p < 3; p++ {
		fmt.Printf("  processor %d holds IndexB entries:", p+1)
		var vals []int64
		for _, e := range aux[p] {
			vals = append(vals, e.Value)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, v := range vals {
			fmt.Printf("  %d", v)
		}
		fmt.Println()
	}

	// Query 1: retrieve R.all where R.A < 50 — the partitioning attribute:
	// the optimizer uses the range boundaries directly.
	q1 := core.Predicate{Attr: storage.Unique1, Lo: 0, Hi: 49}
	r1 := berd.Route(q1)
	fmt.Printf("\nquery %v -> processors %v directly (paper: processor 1)\n",
		q1, oneBased(r1.Participants))

	// Query 2: retrieve R.all where R.B < 50 — a secondary attribute: the
	// optimizer first consults IndexB, then directs the query to the
	// processors the auxiliary entries name.
	q2 := core.Predicate{Attr: storage.Unique2, Lo: 0, Hi: 49}
	r2 := berd.Route(q2)
	fmt.Printf("query %v -> consult IndexB on processors %v", q2, oneBased(r2.Aux))
	owners := map[int]bool{}
	for _, node := range r2.Aux {
		for _, e := range aux[node] {
			if e.Value >= q2.Lo && e.Value <= q2.Hi {
				owners[e.Proc] = true
			}
		}
	}
	var ps []int
	for p := range owners {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	fmt.Printf(", which name processors %v (paper: processors 1 and 2)\n", oneBased(ps))
}

// oneBased renders zero-based processor ids the way the paper numbers them.
func oneBased(ps []int) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p + 1
	}
	return out
}
